// E11 — robustness (extension): what the centralized/distributed trade-off
// means operationally. A Theorem-5 schedule is computed on the intact graph;
// crashes then remove transmitters from its sets silently, so coverage
// degrades. The Theorem-7 protocol makes no topology commitments and keeps
// adapting. Loss faults slow both without breaking either.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/centralized.hpp"
#include "core/distributed.hpp"
#include "core/scheduled_protocol.hpp"
#include "sim/faults.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {

ExperimentResult run_e11_fault_robustness(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E11";
  result.title =
      "Fault robustness: precomputed Thm-5 schedule vs adaptive Thm-7 "
      "protocol under crashes and loss";
  result.table = Table({"fault model", "algorithm", "informed frac (alive)",
                        "completed", "rounds_mean", "trials"});

  const NodeId n = config.quick ? (1 << 12) : (1 << 14);
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);
  const double d = ln_n * ln_n;
  const GnpParams params = GnpParams::with_degree(n, d);
  const auto budget = static_cast<std::uint32_t>(100.0 * ln_n);

  struct Scenario {
    std::string label;
    double crash_fraction;
    double loss;
  };
  const Scenario scenarios[] = {
      {"none", 0.0, 0.0},          {"crash 5%", 0.05, 0.0},
      {"crash 20%", 0.20, 0.0},    {"loss 20%", 0.0, 0.20},
      {"crash 10% + loss 10%", 0.10, 0.10},
  };

  for (const Scenario& scenario : scenarios) {
    struct Trial {
      double cen_frac = 0, dist_frac = 0, cen_rounds = 0, dist_rounds = 0;
      bool cen_done = false, dist_done = false;
    };
    const auto trials = run_trials<Trial>(
        config.trials,
        derive_row_seed(config.seed, stream_tags::kE11FaultRobustness, stable_row_tag(scenario.label)),
        [&](int trial, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng);
          const NodeId source = pick_source(instance.graph, rng);
          SessionFaults faults;
          if (scenario.crash_fraction > 0.0)
            faults = make_crash_faults(instance.graph.num_nodes(),
                                       scenario.crash_fraction, source, rng);
          faults.loss = scenario.loss;
          faults.seed = config.seed * 1000003ULL + static_cast<std::uint64_t>(trial);

          Trial t;
          // Schedule planned BEFORE the faults hit, as a deployment would.
          const CentralizedResult built =
              build_centralized_schedule(instance.graph, source, d, rng);
          {
            BroadcastSession session(instance.graph, source, faults);
            ScheduledProtocol protocol(built.schedule);
            const BroadcastRun run =
                run_protocol(protocol, context_for(instance), session, rng,
                             std::max<std::uint32_t>(
                                 budget, static_cast<std::uint32_t>(
                                             built.schedule.length())));
            t.cen_frac = static_cast<double>(session.informed_count()) /
                         static_cast<double>(session.alive_count());
            t.cen_rounds = run.rounds;
            t.cen_done = run.completed;
          }
          {
            BroadcastSession session(instance.graph, source, faults);
            ElsasserGasieniecBroadcast protocol;
            const BroadcastRun run = run_protocol(
                protocol, context_for(instance), session, rng, budget);
            t.dist_frac = static_cast<double>(session.informed_count()) /
                          static_cast<double>(session.alive_count());
            t.dist_rounds = run.rounds;
            t.dist_done = run.completed;
          }
          return t;
        });

    auto emit = [&](const char* algo, auto frac_of, auto rounds_of,
                    auto done_of) {
      std::vector<double> frac, rounds;
      int done = 0;
      for (const Trial& t : trials) {
        frac.push_back(frac_of(t));
        rounds.push_back(rounds_of(t));
        done += done_of(t) ? 1 : 0;
      }
      result.table.row()
          .cell(scenario.label)
          .cell(algo)
          .cell(mean(frac), 4)
          .cell(std::to_string(done) + "/" + std::to_string(trials.size()))
          .cell(mean(rounds), 1)
          .cell(static_cast<std::uint64_t>(trials.size()));
    };
    emit("centralized (pre-planned)", [](const Trial& t) { return t.cen_frac; },
         [](const Trial& t) { return t.cen_rounds; },
         [](const Trial& t) { return t.cen_done; });
    emit("distributed (adaptive)", [](const Trial& t) { return t.dist_frac; },
         [](const Trial& t) { return t.dist_rounds; },
         [](const Trial& t) { return t.dist_done; });
  }

  result.note(
      "expected shape: without faults both complete; under crashes the "
      "pre-planned schedule strands survivors (its transmitter sets lost "
      "members) while the adaptive protocol still completes; pure loss only "
      "stretches round counts.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(e11, "E11",
                          "Fault robustness: precomputed Thm-5 schedule vs "
                          "adaptive Thm-7 protocol under crashes and loss",
                          run_e11_fault_robustness)

}  // namespace radio
