// E16 — sustained-traffic throughput vs arrival rate λ, with stability-knee
// detection against the Ghaffari–Haeupler–Khabbazian O(1/log n) throughput
// bound (PAPERS.md; analysis/throughput.hpp).
//
// Setup: a depth-2 pipelined stream (sim/stream) of Poisson arrivals on
// connected G(n, ln²n/n) instances, λ swept as fixed fractions of the GHK
// reference b(n) = 1/log2 n. Decay is the positive baseline: each message's
// broadcast completes, so the queue drains below a knee λ* and saturates
// above it — the knee is the pipeline's achieved capacity, and it must land
// AT OR BELOW b(n) (the acceptance gate bench_report.py --check enforces on
// this table). Flooding is the negative control: its first nontrivial
// message wedges on collisions, the slot never frees, and no λ is stable —
// the paper's "naive broadcast fails" story restated as throughput 0.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/stream_workload.hpp"
#include "analysis/throughput.hpp"
#include "analysis/trial_runner.hpp"
#include "protocols/streaming_adapters.hpp"
#include "util/fit.hpp"
#include "util/stats.hpp"

namespace radio {
namespace {

constexpr std::uint32_t kPipelineDepth = 2;

/// λ grid as fractions of the GHK reference bound, ascending. The top point
/// sits AT the bound: decay's capacity is a log factor below it, so the
/// knee detector always has unstable points to bite on.
constexpr double kRateFractions[] = {0.02, 0.05, 0.1, 0.2, 0.5, 1.0};

}  // namespace

ExperimentResult run_e16_stream_throughput(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E16";
  result.title =
      "Streaming throughput vs arrival rate: stability knee under the GHK "
      "bound";
  result.table =
      Table({"protocol", "n", "d", "rate", "rate_frac", "ghk_bound",
             "throughput", "backlog_growth", "stable", "trials"});

  std::vector<NodeId> grid = {1 << 8, 1 << 9};
  if (!config.quick) grid.push_back(1 << 10);
  const std::uint32_t horizon =
      config.horizon > 0 ? static_cast<std::uint32_t>(config.horizon)
                         : (config.quick ? 1200u : 3000u);

  struct Entry {
    const char* label;
    bool decay;
  };
  const Entry entries[] = {{"stream-decay", true}, {"stream-flooding", false}};

  std::vector<double> knee_x, knee_y;  // decay: bound -> knee, per n
  double flooding_knee = 0.0;
  std::uint64_t cell = 0;
  for (NodeId n : grid) {
    const double ln_n = std::log(static_cast<double>(n));
    const double d = ln_n * ln_n;
    const GnpParams params = GnpParams::with_degree(n, d);
    const double bound = ghk_throughput_bound(n);

    for (const Entry& entry : entries) {
      std::vector<double> rates;
      if (config.rate > 0.0) {
        rates.push_back(config.rate);
      } else {
        for (const double frac : kRateFractions) rates.push_back(frac * bound);
      }

      std::vector<StabilityPoint> points;
      for (const double rate : rates) {
        const std::uint64_t cell_seed = Rng::for_stream(config.seed, cell++)();
        const auto trials = run_trials<StreamMetrics>(
            config.trials, cell_seed, [&](int t, Rng& rng) {
              return run_stream_trial(
                  params, config.graph_backend,
                  [&] {
                    return entry.decay ? make_pipelined_decay(kPipelineDepth)
                                       : make_pipelined_flooding(
                                             kPipelineDepth);
                  },
                  rate, horizon, cell_seed, static_cast<std::uint64_t>(t),
                  rng);
            });
        std::vector<double> throughputs, growths;
        for (const StreamMetrics& m : trials) {
          throughputs.push_back(m.throughput());
          growths.push_back(backlog_growth(m));
        }
        const double growth = mean(growths);
        const bool stable = stream_stable(rate, growth);
        points.push_back(StabilityPoint{rate, growth, stable});
        result.table.row()
            .cell(entry.label)
            .cell(static_cast<std::uint64_t>(n))
            .cell(d, 1)
            .cell(rate, 6)
            .cell(rate / bound, 3)
            .cell(bound, 6)
            .cell(mean(throughputs), 6)
            .cell(growth, 6)
            .cell(stable ? "yes" : "no")
            .cell(static_cast<std::uint64_t>(trials.size()));
      }
      const double knee = stability_knee(points);
      if (entry.decay) {
        knee_x.push_back(bound);
        knee_y.push_back(knee);
      } else {
        flooding_knee = std::max(flooding_knee, knee);
      }
    }
  }

  if (knee_x.size() >= 2) {
    const LinearFit fit = fit_line(knee_x, knee_y);
    result.note_fit(
        "decay knee: lambda* ~= " + format_double(fit.coefficients[0], 3) +
            " * (1/log2 n) + " + format_double(fit.coefficients[1], 5) +
            " (R^2 = " + format_double(fit.r_squared, 3) +
            "); the achieved capacity tracks the GHK O(1/log n) reference "
            "from below — decay pays its own log-factor per broadcast, so "
            "the knee sits at a constant fraction of the bound.",
        ModelFitNote{"decay knee",
                     "lambda* = a*(1/log2 n) + b",
                     {{"1/log2 n", fit.coefficients[0]},
                      {"intercept", fit.coefficients[1]}},
                     fit.r_squared});
  } else if (!knee_y.empty()) {
    result.note("decay knee at n=" + std::to_string(grid[0]) + ": lambda* = " +
                format_double(knee_y[0], 6) + " (GHK bound " +
                format_double(ghk_throughput_bound(grid[0]), 6) + ")");
  }
  result.note(
      "flooding delivers nothing at any lambda (knee " +
      format_double(flooding_knee, 6) +
      " is at or below the one-message granularity floor): "
      "all-informed-transmit wedges on collisions, the pipeline slot never "
      "retires its message, and the queue grows at the offered load.");
  result.note(
      "stable == second-half backlog growth under 10% of lambda plus the "
      "granularity floor (analysis/throughput.hpp); every stable row must "
      "satisfy rate <= ghk_bound (gated by bench_report.py --check).");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e16, "E16",
    "Streaming throughput vs arrival rate: stability knee under the GHK "
    "bound",
    run_e16_stream_throughput)

}  // namespace radio
