// E15 — structured topologies (extension, related-work context): the paper
// is about random graphs, where the diameter is O(ln n/ln d) and the
// collision lottery dominates. Feige et al.'s rumor results and Diks
// et al.'s radio algorithms live on bounded-degree and special topologies,
// where the DIAMETER dominates instead. Running the same protocols across
// hypercube / torus / ring / tree / random-regular shows the crossover:
// radio broadcast time tracks max(D, ln n)-flavoured quantities, collapsing
// to Θ(D) on constant-degree, large-diameter graphs where collisions are
// trivial to dodge.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/distributed.hpp"
#include "graph/degree.hpp"
#include "graph/diameter.hpp"
#include "graph/topologies.hpp"
#include "protocols/decay.hpp"
#include "singleport/rumor.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {
namespace {

struct Topology {
  std::string name;
  Graph graph;
  std::uint32_t diameter = 0;
};

std::vector<Topology> make_topologies(bool quick, Rng& rng) {
  std::vector<Topology> out;
  const unsigned dim = quick ? 10 : 12;
  out.push_back({"hypercube d=" + std::to_string(dim), make_hypercube(dim), dim});
  const NodeId side = quick ? 32 : 64;
  out.push_back({"torus " + std::to_string(side) + "x" + std::to_string(side),
                 make_torus(side, side), side});  // 2*(side/2)
  const NodeId ring_n = quick ? 256 : 512;
  out.push_back({"ring n=" + std::to_string(ring_n), make_ring(ring_n),
                 ring_n / 2});
  out.push_back({"binary tree depth=9", make_complete_tree(2, 9), 18});
  const NodeId reg_n = quick ? 1024 : 4096;
  out.push_back({"random 8-regular n=" + std::to_string(reg_n),
                 make_random_regular(reg_n, 8, rng), 0});
  // Fill in measured diameters where the formulaic one is 0 or approximate.
  for (Topology& t : out) {
    Rng sweep_rng(7);
    t.diameter = double_sweep_diameter(t.graph, sweep_rng);
  }
  return out;
}

}  // namespace

ExperimentResult run_e15_structured_topologies(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E15";
  result.title =
      "Structured topologies: radio broadcast where diameter dominates";
  result.table = Table({"topology", "n", "degree", "diameter~", "protocol",
                        "rounds_mean", "completed", "trials"});

  Rng topo_rng(config.seed);
  const std::vector<Topology> topologies =
      make_topologies(config.quick, topo_rng);

  for (const Topology& topology : topologies) {
    const Graph& g = topology.graph;
    const double mean_degree = degree_stats(g).mean_degree;
    const ProtocolContext ctx{g.num_nodes(),
                              mean_degree / static_cast<double>(g.num_nodes())};
    const auto budget = static_cast<std::uint32_t>(
        20.0 * (topology.diameter +
                std::log(static_cast<double>(g.num_nodes()))) + 200.0);

    struct Entry {
      const char* label;
      int kind;  // 0 EG variant, 1 decay, 2 rumor push
    };
    const Entry entries[] = {
        {"eg (all-informed tail)", 0}, {"decay (BGI)", 1}, {"rumor push", 2}};

    for (const Entry& entry : entries) {
      const auto rounds = run_trials_double(
          std::max(2, config.trials / 2),
          derive_row_seed(config.seed, stream_tags::kE15StructuredTopologies, stable_row_tag(topology.name),
                          static_cast<std::uint64_t>(entry.kind)),
          [&](int trial, Rng& rng) {
            const auto source = static_cast<NodeId>(
                rng.uniform_below(g.num_nodes()));
            (void)trial;
            if (entry.kind == 2) {
              const RumorRun run =
                  spread_rumor(g, source, RumorMode::kPush, rng, budget);
              return run.completed ? static_cast<double>(run.rounds)
                                   : static_cast<double>(budget + 1);
            }
            DistributedOptions options;
            options.tail_includes_late_informed = true;
            ElsasserGasieniecBroadcast eg(options);
            DecayProtocol decay;
            Protocol* protocol = entry.kind == 0 ? static_cast<Protocol*>(&eg)
                                                 : static_cast<Protocol*>(&decay);
            const BroadcastRun run =
                broadcast_with(*protocol, ctx, g, source, rng, budget);
            return run.completed ? static_cast<double>(run.rounds)
                                 : static_cast<double>(budget + 1);
          });
      int completed = 0;
      for (double r : rounds)
        if (r <= budget) ++completed;
      result.table.row()
          .cell(topology.name)
          .cell(static_cast<std::uint64_t>(g.num_nodes()))
          .cell(mean_degree, 1)
          .cell(static_cast<std::uint64_t>(topology.diameter))
          .cell(entry.label)
          .cell(mean(rounds), 1)
          .cell(std::to_string(completed) + "/" + std::to_string(rounds.size()))
          .cell(static_cast<std::uint64_t>(rounds.size()));
    }
  }

  result.note(
      "reading: on the ring and torus rounds track the diameter (collisions "
      "are easy to dodge at degree <= 4); on the hypercube and the random "
      "regular graph both terms are logarithmic — the random-graph bounds "
      "are the collision-dominated corner of a max(D, ln n) landscape.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e15, "E15",
    "Structured topologies: radio broadcast where diameter dominates",
    run_e15_structured_topologies)

}  // namespace radio
