// E7 — lower bounds, empirically, via GUIDED adversarial search.
//
// Theorem 8 (distributed, Ω(ln n)): topology-oblivious algorithms are
// per-round transmit-probability sequences. The driver runs a (1+λ) local
// search (core/adversary.hpp) over such sequences per instance — seeded with
// the paper's own Theorem-7 schedule — and reports the best worst-trial
// completion found. The best found grows linearly in ln n: even a search that
// actively optimizes the schedule cannot beat the bound.
//
// Theorem 6 (centralized, p = 1/2): after the proof's reduction, adversary
// schedules transmit sets of size 1 or 2. The driver searches explicit
// small-set schedules and shows (a) none completes within a c·ln n budget
// and (b) even the best found needs ~log₂ n rounds.
//
// Every row carries the per-instance CERTIFICATE of its hardest instance:
// the witness node that pinned the result and the rounds it survived
// uninformed. The final "stress" rows replay the hardest certified Thm-8
// instance (regenerated from its recorded RNG stream) against the certified
// schedule itself and every protocol in src/protocols/.
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/adversary.hpp"
#include "core/lower_bound.hpp"
#include "protocols/adaptive_backoff.hpp"
#include "protocols/decay.hpp"
#include "protocols/flooding.hpp"
#include "protocols/round_robin.hpp"
#include "protocols/selective_family.hpp"
#include "protocols/uniform_gossip.hpp"
#include "sim/runner.hpp"
#include "util/fit.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {
namespace {

/// Per-instance search outcome plus its certificate fields, flattened for
/// run_trials aggregation.
struct GuidedTrial {
  double best = 0;
  double frac = 0;
  double diameter = 0;
  double witness = 0;
  double survived = 0;
  double probes = 0;
};

GuidedTrial flatten(const GuidedSearchOutcome& outcome, double diameter) {
  GuidedTrial t;
  t.best = static_cast<double>(outcome.best_rounds);
  t.frac = outcome.completed_fraction;
  t.diameter = diameter;
  t.witness = static_cast<double>(outcome.certificate.witness);
  t.survived = static_cast<double>(outcome.certificate.rounds_survived);
  t.probes = static_cast<double>(outcome.certificate.probes);
  return t;
}

/// The hardest instance of a row: the one whose witness survived longest
/// (ties to the earliest trial, so the pick is stable).
std::size_t hardest_index(const std::vector<GuidedTrial>& trials) {
  std::size_t hardest = 0;
  for (std::size_t i = 1; i < trials.size(); ++i)
    if (trials[i].survived > trials[hardest].survived) hardest = i;
  return hardest;
}

}  // namespace

ExperimentResult run_e7_lower_bounds(const ExperimentConfig& config) {
  // The guided searches certify per-instance results; a single instance per
  // row would make the row's "hardest instance" vacuous. Diagnose instead of
  // silently rewriting the count (this used to clamp to trials/4).
  if (config.trials < 2)
    throw std::runtime_error(
        "E7 requires --trials >= 2 (got " + std::to_string(config.trials) +
        "): each row certifies its hardest instance, which needs at least "
        "two instances to compare");

  ExperimentResult result;
  result.id = "E7";
  result.title = "Theorems 6 & 8: guided adversarial search (lower bounds)";
  result.table =
      Table({"experiment", "n", "budget", "probes", "best_rounds",
             "completed_frac", "diameter", "ln n", "best/ln n", "witness",
             "survived"});
  result.note("instances per row: " + std::to_string(config.trials) +
              " (honors --trials; earlier revisions clamped to trials/4)");

  const auto lanes = static_cast<std::uint32_t>(
      config.batch > 1 ? config.batch : 32);  // perf default; results are
                                              // byte-identical for any width

  // Recorded provenance of the hardest certified Thm-8 instance, for the
  // stress rows: regenerating Rng::for_stream(row_seed, trial) replays the
  // exact graph + source the certificate was earned on.
  std::uint64_t hardest_row_seed = 0;
  std::size_t hardest_trial = 0;
  NodeId hardest_n = 0;
  double hardest_survived = -1.0;
  std::vector<double> hardest_schedule;

  // ---- Theorem 8: guided oblivious-sequence search on sparse graphs.
  {
    std::vector<NodeId> grid = {1 << 9, 1 << 10, 1 << 11, 1 << 12};
    if (!config.quick) grid.push_back(1 << 13);
    std::vector<double> fit_x, fit_y;
    for (NodeId n : grid) {
      const double nd = static_cast<double>(n);
      const double ln_n = std::log(nd);
      const double d = ln_n * ln_n;
      const GnpParams params = GnpParams::with_degree(n, d);
      GuidedSearchParams search;
      search.round_budget = static_cast<std::uint32_t>(10.0 * ln_n);
      search.generations = config.quick ? 12 : 32;
      search.population = config.quick ? 6 : 10;
      search.trials_per_candidate = 2;
      search.batch_lanes = lanes;

      const std::uint64_t row_seed =
          derive_row_seed(config.seed, stream_tags::kE7LowerBounds, stream_tags::kRowThm8, n);
      std::vector<std::vector<double>> schedules(
          static_cast<std::size_t>(config.trials));
      const auto trials = run_trials<GuidedTrial>(
          config.trials, row_seed, [&](int trial, Rng& rng) {
            const BroadcastInstance instance =
                make_broadcast_instance(params, rng);
            const NodeId source = pick_source(instance.graph, rng);
            const GuidedSearchOutcome outcome = guided_oblivious_search(
                instance.graph, source, context_for(instance), search, rng);
            schedules[static_cast<std::size_t>(trial)] =
                outcome.certificate.oblivious_probs;
            return flatten(outcome, static_cast<double>(broadcast_diameter_bound(
                                        instance.graph, source)));
          });

      std::vector<double> best, frac, diam;
      for (const GuidedTrial& t : trials) {
        best.push_back(t.best);
        frac.push_back(t.frac);
        diam.push_back(t.diameter);
      }
      const std::size_t hardest = hardest_index(trials);
      if (trials[hardest].survived > hardest_survived) {
        hardest_survived = trials[hardest].survived;
        hardest_row_seed = row_seed;
        hardest_trial = hardest;
        hardest_n = n;
        hardest_schedule = schedules[hardest];
      }
      const double best_mean = mean(best);
      result.table.row()
          .cell("Thm8 guided oblivious search")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(search.round_budget))
          .cell(static_cast<std::uint64_t>(trials[hardest].probes))
          .cell(best_mean, 1)
          .cell(mean(frac), 3)
          .cell(mean(diam), 1)
          .cell(ln_n, 2)
          .cell(best_mean / ln_n, 3)
          .cell(static_cast<std::uint64_t>(trials[hardest].witness))
          .cell(static_cast<std::uint64_t>(trials[hardest].survived));
      fit_x.push_back(ln_n);
      fit_y.push_back(best_mean);
    }
    const LinearFit fit = fit_line(fit_x, fit_y);
    result.note_fit(
        "Thm8: best guided oblivious completion ~= " +
            format_double(fit.coefficients[0], 3) + "*ln n + " +
            format_double(fit.coefficients[1], 2) + " (R^2 = " +
            format_double(fit.r_squared, 3) +
            ") - linear in ln n even under guided search, matching "
            "Omega(ln n).",
        ModelFitNote{"Thm8 best guided oblivious completion",
                     "a*ln n + b",
                     {{"ln n", fit.coefficients[0]},
                      {"intercept", fit.coefficients[1]}},
                     fit.r_squared});
  }

  // ---- Theorem 6: guided size-<=2 set schedules at p = 1/2.
  {
    std::vector<NodeId> grid = {128, 256, 512};
    if (!config.quick) grid.push_back(1024);
    for (NodeId n : grid) {
      const double nd = static_cast<double>(n);
      const double ln_n = std::log(nd);
      const GnpParams params{n, 0.5};

      // Short budget: c*ln n with c = 1 (the proof's regime is c < 1/8, but
      // even c = 1 fails, which is a stronger statement in this direction).
      GuidedSearchParams tight;
      tight.round_budget = static_cast<std::uint32_t>(ln_n);
      tight.generations = config.quick ? 10 : 24;
      tight.population = config.quick ? 8 : 16;
      tight.batch_lanes = lanes;
      // Generous budget to locate the true completion scale (Theta(ln n)).
      GuidedSearchParams loose = tight;
      loose.round_budget = static_cast<std::uint32_t>(10.0 * ln_n);

      struct Thm6Trial {
        GuidedTrial tight, loose;
      };
      const auto trials = run_trials<Thm6Trial>(
          config.trials,
          derive_row_seed(config.seed, stream_tags::kE7LowerBounds, stream_tags::kRowThm6, n),
          [&](int, Rng& rng) {
            const BroadcastInstance instance =
                make_broadcast_instance(params, rng);
            const NodeId source = pick_source(instance.graph, rng);
            const double diameter = static_cast<double>(
                broadcast_diameter_bound(instance.graph, source));
            Thm6Trial t;
            t.tight = flatten(
                guided_small_set_search(instance.graph, source, tight, rng),
                diameter);
            t.loose = flatten(
                guided_small_set_search(instance.graph, source, loose, rng),
                diameter);
            return t;
          });

      std::vector<GuidedTrial> tight_trials, loose_trials;
      std::vector<double> tight_frac, loose_best, diam;
      for (const Thm6Trial& t : trials) {
        tight_trials.push_back(t.tight);
        loose_trials.push_back(t.loose);
        tight_frac.push_back(t.tight.frac);
        loose_best.push_back(t.loose.best);
        diam.push_back(t.tight.diameter);
      }
      const std::size_t tight_hard = hardest_index(tight_trials);
      const std::size_t loose_hard = hardest_index(loose_trials);
      result.table.row()
          .cell("Thm6 p=1/2, sets<=2 (budget ln n)")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(tight.round_budget))
          .cell(static_cast<std::uint64_t>(tight_trials[tight_hard].probes))
          .cell("-")
          .cell(mean(tight_frac), 4)
          .cell(mean(diam), 1)
          .cell(ln_n, 2)
          .cell("-")
          .cell(static_cast<std::uint64_t>(tight_trials[tight_hard].witness))
          .cell(static_cast<std::uint64_t>(tight_trials[tight_hard].survived));
      result.table.row()
          .cell("Thm6 p=1/2, sets<=2 (budget 10 ln n)")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(loose.round_budget))
          .cell(static_cast<std::uint64_t>(loose_trials[loose_hard].probes))
          .cell(mean(loose_best), 1)
          .cell("-")
          .cell(mean(diam), 1)
          .cell(ln_n, 2)
          .cell(mean(loose_best) / ln_n, 3)
          .cell(static_cast<std::uint64_t>(loose_trials[loose_hard].witness))
          .cell(static_cast<std::uint64_t>(loose_trials[loose_hard].survived));
    }
    result.note(
        "Thm6: within ln n rounds (far above the proof's c<1/8 regime) most "
        "trials stay incomplete even under guided search; the best schedule "
        "found still needs Theta(ln n) rounds (~0.9*ln n), so Omega(ln n) = "
        "Omega(ln d) at p=1/2.");
  }

  // ---- Stress mode: replay the hardest certified Thm-8 instance against
  // the certified schedule itself and every protocol in src/protocols/.
  {
    const double nd = static_cast<double>(hardest_n);
    const double ln_n = std::log(nd);
    const GnpParams params =
        GnpParams::with_degree(hardest_n, ln_n * ln_n);
    // Regenerate the exact instance from its recorded stream: the trial
    // consumed instance-then-source from for_stream(row_seed, trial).
    Rng instance_rng = Rng::for_stream(
        hardest_row_seed, static_cast<std::uint64_t>(hardest_trial));
    const BroadcastInstance instance =
        make_broadcast_instance(params, instance_rng);
    const NodeId source = pick_source(instance.graph, instance_rng);
    const double diameter = static_cast<double>(
        broadcast_diameter_bound(instance.graph, source));
    const ProtocolContext ctx = context_for(instance);

    struct StressEntry {
      const char* name;
      std::uint32_t budget;
      std::unique_ptr<Protocol> (*make)(const std::vector<double>& probs);
    };
    const auto ln_budget = static_cast<std::uint32_t>(40.0 * ln_n);
    const StressEntry entries[] = {
        {"stress certified-schedule",
         static_cast<std::uint32_t>(10.0 * ln_n),
         [](const std::vector<double>& probs) -> std::unique_ptr<Protocol> {
           return std::make_unique<ObliviousSequenceProtocol>(probs);
         }},
        {"stress adaptive-backoff", 0 /* ln_budget below */,
         [](const std::vector<double>&) -> std::unique_ptr<Protocol> {
           return std::make_unique<AdaptiveBackoffProtocol>();
         }},
        {"stress decay", 0,
         [](const std::vector<double>&) -> std::unique_ptr<Protocol> {
           return std::make_unique<DecayProtocol>();
         }},
        {"stress flooding", 0 /* 10 ln n below */,
         [](const std::vector<double>&) -> std::unique_ptr<Protocol> {
           return std::make_unique<FloodingProtocol>();
         }},
        {"stress round-robin", 0 /* n*8 below */,
         [](const std::vector<double>&) -> std::unique_ptr<Protocol> {
           return std::make_unique<RoundRobinProtocol>();
         }},
        {"stress selective-family", 20000,
         [](const std::vector<double>&) -> std::unique_ptr<Protocol> {
           return std::make_unique<SelectiveFamilyProtocol>();
         }},
        {"stress uniform-gossip", 0,
         [](const std::vector<double>&) -> std::unique_ptr<Protocol> {
           return std::make_unique<UniformGossipProtocol>();
         }},
    };

    for (const StressEntry& entry : entries) {
      std::uint32_t budget = entry.budget;
      if (budget == 0) budget = ln_budget;
      if (std::string(entry.name) == "stress flooding")
        budget = static_cast<std::uint32_t>(10.0 * ln_n);
      if (std::string(entry.name) == "stress round-robin")
        budget = hardest_n * 8;
      struct StressTrial {
        double rounds = 0;
        double completed = 0;
      };
      const auto trials = run_trials<StressTrial>(
          config.trials,
          derive_row_seed(config.seed, stream_tags::kE7LowerBounds, stream_tags::kRowStress,
                          stable_row_tag(entry.name)),
          [&](int, Rng& rng) {
            const std::unique_ptr<Protocol> protocol =
                entry.make(hardest_schedule);
            const BroadcastRun run = broadcast_with(
                *protocol, ctx, instance.graph, source, rng, budget);
            StressTrial t;
            t.rounds = static_cast<double>(run.completed ? run.rounds
                                                         : budget + 1);
            t.completed = run.completed ? 1.0 : 0.0;
            return t;
          });
      std::vector<double> rounds, completed;
      for (const StressTrial& t : trials) {
        rounds.push_back(t.rounds);
        completed.push_back(t.completed);
      }
      result.table.row()
          .cell(entry.name)
          .cell(static_cast<std::uint64_t>(hardest_n))
          .cell(static_cast<std::uint64_t>(budget))
          .cell(static_cast<std::uint64_t>(trials.size()))
          .cell(mean(rounds), 1)
          .cell(mean(completed), 3)
          .cell(diameter, 1)
          .cell(ln_n, 2)
          .cell(mean(rounds) / ln_n, 3)
          .cell("-")
          .cell("-");
    }
    result.note(
        "stress rows replay the hardest certified Thm8 instance (n = " +
        std::to_string(hardest_n) + ", witness survived " +
        format_double(hardest_survived, 0) +
        " rounds) against the certified schedule and every protocol in "
        "src/protocols/; rounds are budget+1 when a trial never completed.");
  }
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e7, "E7", "Theorems 6 & 8: guided adversarial search (lower bounds)",
    run_e7_lower_bounds)

}  // namespace radio
