// E7 — lower bounds, empirically.
//
// Theorem 8 (distributed, Ω(ln n)): topology-oblivious algorithms are
// per-round transmit-probability sequences. The driver searches many random
// sequences (plus the paper's own Theorem-7 sequence) and reports the best
// completion time found per n. The best found grows linearly in ln n — no
// sampled oblivious schedule beats the bound, and none completes within a
// small c·ln n budget.
//
// Theorem 6 (centralized, p = 1/2): after the proof's reduction, adversary
// schedules transmit sets of size 1 or 2. The driver samples many such
// schedules and shows (a) essentially none completes within c·ln n rounds
// for small c and (b) even the best needs ~log₂ n rounds.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/lower_bound.hpp"
#include "util/fit.hpp"
#include "util/stats.hpp"

namespace radio {

ExperimentResult run_e7_lower_bounds(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E7";
  result.title = "Theorems 6 & 8: adversarial schedule search (lower bounds)";
  result.table = Table({"experiment", "n", "budget", "samples", "best_rounds",
                        "completed_frac", "diameter", "ln n", "best/ln n"});

  // ---- Theorem 8: oblivious probability sequences on sparse graphs.
  {
    std::vector<NodeId> grid = {1 << 9, 1 << 10, 1 << 11, 1 << 12};
    if (!config.quick) grid.push_back(1 << 13);
    std::vector<double> fit_x, fit_y;
    for (NodeId n : grid) {
      const double nd = static_cast<double>(n);
      const double ln_n = std::log(nd);
      const double d = ln_n * ln_n;
      const GnpParams params = GnpParams::with_degree(n, d);
      ObliviousSearchParams search;
      search.round_budget = static_cast<std::uint32_t>(10.0 * ln_n);
      search.num_candidates = config.quick ? 24 : 96;
      search.trials_per_candidate = 2;
      search.batch_lanes = static_cast<std::uint32_t>(config.batch);

      struct Trial {
        double best = 0;
        double frac = 0;
        double diameter = 0;
      };
      const auto trials = run_trials<Trial>(
          std::max(2, config.trials / 4), config.seed ^ (n * 31ULL),
          [&](int, Rng& rng) {
            const BroadcastInstance instance =
                make_broadcast_instance(params, rng);
            const NodeId source = pick_source(instance.graph, rng);
            const ObliviousSearchOutcome outcome = search_oblivious_schedules(
                instance.graph, source, context_for(instance), search, rng);
            Trial t;
            t.best = static_cast<double>(outcome.best_rounds);
            t.frac = outcome.completed_fraction;
            t.diameter = static_cast<double>(
                broadcast_diameter_bound(instance.graph, source));
            return t;
          });
      std::vector<double> best, frac, diam;
      for (const Trial& t : trials) {
        best.push_back(t.best);
        frac.push_back(t.frac);
        diam.push_back(t.diameter);
      }
      const double best_mean = mean(best);
      result.table.row()
          .cell("Thm8 oblivious search")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(search.round_budget))
          .cell(static_cast<std::uint64_t>(search.num_candidates))
          .cell(best_mean, 1)
          .cell(mean(frac), 3)
          .cell(mean(diam), 1)
          .cell(ln_n, 2)
          .cell(best_mean / ln_n, 3);
      fit_x.push_back(ln_n);
      fit_y.push_back(best_mean);
    }
    const LinearFit fit = fit_line(fit_x, fit_y);
    result.note_fit(
        "Thm8: best oblivious completion ~= " +
            format_double(fit.coefficients[0], 3) + "*ln n + " +
            format_double(fit.coefficients[1], 2) + " (R^2 = " +
            format_double(fit.r_squared, 3) +
            ") - linear in ln n across the search, matching Omega(ln n).",
        ModelFitNote{"Thm8 best oblivious completion",
                     "a*ln n + b",
                     {{"ln n", fit.coefficients[0]},
                      {"intercept", fit.coefficients[1]}},
                     fit.r_squared});
  }

  // ---- Theorem 6: size-<=2 set schedules at p = 1/2.
  {
    std::vector<NodeId> grid = {128, 256, 512};
    if (!config.quick) grid.push_back(1024);
    for (NodeId n : grid) {
      const double nd = static_cast<double>(n);
      const double ln_n = std::log(nd);
      const GnpParams params{n, 0.5};

      // Short budget: c*ln n with c = 1 (the proof's regime is c < 1/8, but
      // even c = 1 fails, which is a stronger statement in this direction).
      SmallSetAdversaryParams tight;
      tight.round_budget = static_cast<std::uint32_t>(ln_n);
      tight.num_schedules = config.quick ? 128 : 512;
      tight.batch_lanes = static_cast<std::uint32_t>(config.batch);
      // Generous budget to locate the true completion scale (~log2 n).
      SmallSetAdversaryParams loose = tight;
      loose.round_budget = static_cast<std::uint32_t>(10.0 * ln_n);

      struct Trial {
        double tight_frac = 0, loose_best = 0, loose_frac = 0, diameter = 0;
      };
      const auto trials = run_trials<Trial>(
          std::max(2, config.trials / 4), config.seed ^ (n * 57ULL),
          [&](int, Rng& rng) {
            const BroadcastInstance instance =
                make_broadcast_instance(params, rng);
            const NodeId source = pick_source(instance.graph, rng);
            Trial t;
            t.tight_frac = probe_small_set_schedules(instance.graph, source,
                                                     tight, rng)
                               .completed_fraction;
            const SmallSetAdversaryOutcome lo =
                probe_small_set_schedules(instance.graph, source, loose, rng);
            t.loose_best = static_cast<double>(lo.best_rounds);
            t.loose_frac = lo.completed_fraction;
            t.diameter = static_cast<double>(
                broadcast_diameter_bound(instance.graph, source));
            return t;
          });
      std::vector<double> tight_frac, loose_best, diam;
      for (const Trial& t : trials) {
        tight_frac.push_back(t.tight_frac);
        loose_best.push_back(t.loose_best);
        diam.push_back(t.diameter);
      }
      result.table.row()
          .cell("Thm6 p=1/2, sets<=2 (budget ln n)")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(tight.round_budget))
          .cell(static_cast<std::uint64_t>(tight.num_schedules))
          .cell("-")
          .cell(mean(tight_frac), 4)
          .cell(mean(diam), 1)
          .cell(ln_n, 2)
          .cell("-");
      result.table.row()
          .cell("Thm6 p=1/2, sets<=2 (budget 10 ln n)")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(loose.round_budget))
          .cell(static_cast<std::uint64_t>(loose.num_schedules))
          .cell(mean(loose_best), 1)
          .cell("-")
          .cell(mean(diam), 1)
          .cell(ln_n, 2)
          .cell(mean(loose_best) / ln_n, 3);
    }
    result.note(
        "Thm6: within ln n rounds (far above the proof's c<1/8 regime) the "
        "completion fraction stays ~0; the best small-set schedule needs "
        "~log2 n ~ 1.44*ln n rounds, so Omega(ln n) = Omega(ln d) at p=1/2.");
  }
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e7, "E7", "Theorems 6 & 8: adversarial schedule search (lower bounds)",
    run_e7_lower_bounds)

}  // namespace radio
