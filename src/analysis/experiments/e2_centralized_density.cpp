// E2 — Theorem 5 as a function of density at fixed n.
//
// Sweeping d from just above the connectivity threshold to n^0.9 exposes the
// two terms of the bound: sparse graphs pay the ln n / ln d diameter term
// (many thin layers to pipeline through), dense graphs pay the ln d
// selective term (the collision lottery needs ln d rounds). The measured
// round count should trace the U-ish shape of ln n/ln d + ln d with its
// minimum near ln d = sqrt(ln n).
//
// With --graph-backend implicit the sweep is replaced by the giant-n mode:
// one row at n = 10^7 (quick) / 2·10^7 (full), d = 3 ln n, run end to end on
// the on-demand ImplicitGnp sampler without ever materializing the graph as
// an edge list up front. Same columns, so downstream tooling is unchanged.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/centralized.hpp"
#include "graph/implicit_gnp.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {
namespace {

struct E2Trial {
  double rounds = 0, p1 = 0, p2 = 0, p3 = 0, completed = 0;
};

void append_density_row(ExperimentResult& result, NodeId n, double d, double p,
                        const std::vector<E2Trial>& trials, double target,
                        double* worst_ratio, int p_digits = 5) {
  std::vector<double> rounds, p1, p2, p3;
  for (const E2Trial& t : trials) {
    rounds.push_back(t.rounds);
    p1.push_back(t.p1);
    p2.push_back(t.p2);
    p3.push_back(t.p3);
  }
  const Summary s = summarize(rounds);
  result.table.row()
      .cell(static_cast<std::uint64_t>(n))
      .cell(d, 1)
      .cell(p, p_digits)
      .cell(static_cast<std::uint64_t>(trials.size()))
      .cell(s.mean, 2)
      .cell(s.p95, 1)
      .cell(mean(p1), 2)
      .cell(mean(p2), 2)
      .cell(mean(p3), 2)
      .cell(target, 2)
      .cell(s.mean / target, 3);
  if (worst_ratio != nullptr)
    *worst_ratio = std::max(*worst_ratio, s.mean / target);
}

/// Giant-n mode: Theorem 5 on ImplicitGnp at a scale where materializing the
/// edge list up front (let alone the old O(n²) dense probe) is off the
/// table. d = 3 ln n keeps the instance connected whp (no connectivity check
/// at this scale — the `completed` flag of the build report is the witness).
ExperimentResult run_e2_implicit_giant(const ExperimentConfig& config,
                                       ExperimentResult result) {
  const NodeId n = config.quick ? 10'000'000u : 20'000'000u;
  const double nd = static_cast<double>(n);
  const double d = 3.0 * std::log(nd);
  const GnpParams params = GnpParams::with_degree(n, d);

  const auto trials = run_trials<E2Trial>(
      config.trials, Rng::for_stream(config.seed, stream_tags::kE2GiantRowStream)(), [&](int, Rng& rng) {
        const ImplicitGnp g(n, params.p, rng());
        const NodeId source = static_cast<NodeId>(rng.uniform_below(n));
        const CentralizedResult built =
            build_centralized_schedule(g, source, d, rng);
        return E2Trial{static_cast<double>(built.report.total_rounds),
                       static_cast<double>(built.report.phase1_rounds),
                       static_cast<double>(built.report.phase2_rounds),
                       static_cast<double>(built.report.phase3_rounds),
                       built.report.completed ? 1.0 : 0.0};
      });

  append_density_row(result, n, d, params.p, trials,
                     centralized_target_rounds(nd, d), nullptr,
                     /*p_digits=*/8);

  std::size_t completed = 0;
  for (const E2Trial& t : trials) completed += t.completed > 0.5 ? 1 : 0;
  result.note("graph backend: implicit (on-demand G(n,p) sampling; no "
              "up-front edge list).");
  result.note("broadcast completed in " + std::to_string(completed) + "/" +
              std::to_string(trials.size()) +
              " trial(s); connectivity is whp at d = 3 ln n and not checked "
              "separately at this scale.");
  return result;
}

}  // namespace

ExperimentResult run_e2_centralized_density(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E2";
  result.title =
      "Theorem 5: rounds vs density at fixed n (diameter vs selective term)";
  result.table =
      Table({"n", "d", "p", "trials", "rounds_mean", "rounds_p95", "phase1",
             "phase2", "phase3", "target", "mean/target"});

  if (config.graph_backend == GraphBackendChoice::kImplicit)
    return run_e2_implicit_giant(config, std::move(result));

  const NodeId n = config.quick ? (1 << 13) : (1 << 16);
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);

  // Exponents for d = n^e, preceded by the threshold-scale regimes.
  std::vector<double> degrees = {1.5 * ln_n, 3.0 * ln_n, ln_n * ln_n,
                                 std::pow(nd, 0.45), std::pow(nd, 0.6),
                                 std::pow(nd, 0.75), std::pow(nd, 0.9)};

  double worst_ratio = 0.0;
  for (std::size_t row = 0; row < degrees.size(); ++row) {
    const double d = degrees[row];
    const GnpParams params = GnpParams::with_degree(n, d);

    // Per-row seed derived through the stream hash: nearby d values used to
    // collide under the old `seed ^ (d * 977)` scheme (e.g. rows whose d
    // differ by less than 1/977 XOR-ed identical masks), silently rerunning
    // identical trials.
    const auto trials = run_trials<E2Trial>(
        config.trials, Rng::for_stream(config.seed, row)(), [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng, config.graph_backend);
          const NodeId source = pick_source(instance.graph, rng);
          const CentralizedResult built = build_centralized_schedule(
              instance.graph, source, instance.params.expected_degree(), rng);
          return E2Trial{static_cast<double>(built.report.total_rounds),
                         static_cast<double>(built.report.phase1_rounds),
                         static_cast<double>(built.report.phase2_rounds),
                         static_cast<double>(built.report.phase3_rounds), 1.0};
        });

    append_density_row(result, n, d, params.p, trials,
                       centralized_target_rounds(nd, d), &worst_ratio);
  }

  result.note(
      "sparse end is dominated by phase1 (ln n/ln d pipeline), dense end by "
      "phase2 (ln d selective rounds); the minimum sits near ln d = "
      "sqrt(ln n) = " +
      format_double(std::sqrt(ln_n), 2) + " i.e. d ~= " +
      format_double(std::exp(std::sqrt(ln_n)), 1) + ".");
  result.note("worst mean/target ratio over the sweep: " +
              format_double(worst_ratio, 3) +
              " (bounded constant = the Theta() holds).");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e2, "E2",
    "Theorem 5: rounds vs density at fixed n (diameter vs selective term)",
    run_e2_centralized_density)

}  // namespace radio
