// E2 — Theorem 5 as a function of density at fixed n.
//
// Sweeping d from just above the connectivity threshold to n^0.9 exposes the
// two terms of the bound: sparse graphs pay the ln n / ln d diameter term
// (many thin layers to pipeline through), dense graphs pay the ln d
// selective term (the collision lottery needs ln d rounds). The measured
// round count should trace the U-ish shape of ln n/ln d + ln d with its
// minimum near ln d = sqrt(ln n).
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/centralized.hpp"
#include "util/stats.hpp"

namespace radio {

ExperimentResult run_e2_centralized_density(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E2";
  result.title =
      "Theorem 5: rounds vs density at fixed n (diameter vs selective term)";
  result.table =
      Table({"n", "d", "p", "trials", "rounds_mean", "rounds_p95", "phase1",
             "phase2", "phase3", "target", "mean/target"});

  const NodeId n = config.quick ? (1 << 13) : (1 << 16);
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);

  // Exponents for d = n^e, preceded by the threshold-scale regimes.
  std::vector<double> degrees = {1.5 * ln_n, 3.0 * ln_n, ln_n * ln_n,
                                 std::pow(nd, 0.45), std::pow(nd, 0.6),
                                 std::pow(nd, 0.75), std::pow(nd, 0.9)};

  double best_mean = 0.0, worst_ratio = 0.0;
  for (double d : degrees) {
    const GnpParams params = GnpParams::with_degree(n, d);

    struct Trial {
      double rounds = 0, p1 = 0, p2 = 0, p3 = 0;
    };
    const auto trials = run_trials<Trial>(
        config.trials, config.seed ^ static_cast<std::uint64_t>(d * 977),
        [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng);
          const NodeId source = pick_source(instance.graph, rng);
          const CentralizedResult built = build_centralized_schedule(
              instance.graph, source, instance.params.expected_degree(), rng);
          return Trial{static_cast<double>(built.report.total_rounds),
                       static_cast<double>(built.report.phase1_rounds),
                       static_cast<double>(built.report.phase2_rounds),
                       static_cast<double>(built.report.phase3_rounds)};
        });

    std::vector<double> rounds, p1, p2, p3;
    for (const Trial& t : trials) {
      rounds.push_back(t.rounds);
      p1.push_back(t.p1);
      p2.push_back(t.p2);
      p3.push_back(t.p3);
    }
    const Summary s = summarize(rounds);
    const double target = centralized_target_rounds(nd, d);
    result.table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(d, 1)
        .cell(params.p, 5)
        .cell(static_cast<std::uint64_t>(trials.size()))
        .cell(s.mean, 2)
        .cell(s.p95, 1)
        .cell(mean(p1), 2)
        .cell(mean(p2), 2)
        .cell(mean(p3), 2)
        .cell(target, 2)
        .cell(s.mean / target, 3);
    best_mean = best_mean == 0.0 ? s.mean : std::min(best_mean, s.mean);
    worst_ratio = std::max(worst_ratio, s.mean / target);
  }

  result.note(
      "sparse end is dominated by phase1 (ln n/ln d pipeline), dense end by "
      "phase2 (ln d selective rounds); the minimum sits near ln d = "
      "sqrt(ln n) = " +
      format_double(std::sqrt(ln_n), 2) + " i.e. d ~= " +
      format_double(std::exp(std::sqrt(ln_n)), 1) + ".");
  result.note("worst mean/target ratio over the sweep: " +
              format_double(worst_ratio, 3) +
              " (bounded constant = the Theta() holds).");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e2, "E2",
    "Theorem 5: rounds vs density at fixed n (diameter vs selective term)",
    run_e2_centralized_density)

}  // namespace radio
