// E14 — multi-source broadcast (extension): the same alert injected at k
// nodes simultaneously (k sirens, one message). Expected shape: the
// diameter term of the round count shrinks like the distance to the nearest
// source (ln(n/k)/ln d of the pipeline phase), while the ln-d-flavoured
// collision term is irreducible — so returns diminish quickly in k, and the
// paper's single-source bound is within a constant of the k-source time for
// any k.
//
// Protocol choice: the ALL-INFORMED-TAIL variant of Theorem 7. The strict
// paper tail (only nodes informed by round D transmit selectively) is
// calibrated to single-source layer growth d^i; with k sources the informed
// set after round D is k overlapping balls, and excluding later learners
// strands pockets between them (measured: k = 4 completed only 12/16 within
// budget under the strict tail). The variant isolates the source-count
// effect we actually want to measure.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/distributed.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {
namespace {

std::vector<NodeId> pick_distinct_sources(NodeId n, std::size_t k, Rng& rng) {
  std::vector<NodeId> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = v;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_below(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(k);
  return ids;
}

}  // namespace

ExperimentResult run_e14_multisource(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E14";
  result.title = "Multi-source broadcast: rounds vs number of sources k";
  result.table = Table({"n", "d", "k", "rounds_mean", "rounds_p95",
                        "vs k=1", "completed", "trials"});

  const NodeId n = config.quick ? (1 << 12) : (1 << 14);
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);
  const double d = ln_n * ln_n;
  const GnpParams params = GnpParams::with_degree(n, d);
  const auto budget = static_cast<std::uint32_t>(80.0 * ln_n);

  const std::size_t ks[] = {1, 2, 4, 16, 64, 256};
  double baseline = 0.0;
  for (std::size_t k : ks) {
    struct Trial {
      double rounds = 0;
      bool completed = false;
    };
    const auto trials = run_trials<Trial>(
        config.trials, derive_row_seed(config.seed, stream_tags::kE14Multisource, k),
        [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng);
          const std::vector<NodeId> sources =
              pick_distinct_sources(instance.graph.num_nodes(), k, rng);
          BroadcastSession session(instance.graph, sources);
          DistributedOptions options;
          options.tail_includes_late_informed = true;
          ElsasserGasieniecBroadcast protocol(options);
          const BroadcastRun run = run_protocol(
              protocol, context_for(instance), session, rng, budget);
          return Trial{static_cast<double>(run.rounds), run.completed};
        });
    std::vector<double> rounds;
    int completed = 0;
    for (const Trial& t : trials) {
      rounds.push_back(t.rounds);
      completed += t.completed ? 1 : 0;
    }
    const Summary s = summarize(rounds);
    if (k == 1) baseline = s.mean;
    result.table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(d, 1)
        .cell(static_cast<std::uint64_t>(k))
        .cell(s.mean, 2)
        .cell(s.p95, 1)
        .cell(baseline > 0.0 ? s.mean / baseline : 1.0, 3)
        .cell(std::to_string(completed) + "/" + std::to_string(trials.size()))
        .cell(static_cast<std::uint64_t>(trials.size()));
  }

  result.note(
      "shape check: rounds decrease mildly and saturate — extra sources "
      "shave the pipeline (diameter) term only; the collision-lottery term "
      "is irreducible, so the single-source Theta(ln n) bound is tight up "
      "to constants for every k.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e14, "E14", "Multi-source broadcast: rounds vs number of sources k",
    run_e14_multisource)

}  // namespace radio
