// E18 — queue stability over long horizons at giant n, streamed against the
// on-demand ImplicitGnp backend (no materialized graph ever exists).
//
// This is the ROADMAP's "service under heavy traffic" experiment run at the
// scale PR 7 unlocked: decay pipelined depth-2 over LightSession<ImplicitGnp>
// (analysis/stream_workload.hpp), G(n, 3 ln n / n) — the connectivity-safe
// density E2's giant mode uses — and horizons long enough that a queue
// either visibly drains or visibly diverges. The queue-depth trajectory is
// recorded per row so the manifest shows the SHAPE of (in)stability, not
// just the verdict: a stable λ's trajectory plateaus, an unstable one's
// climbs linearly at λ − μ.
//
// The driver always uses the implicit backend regardless of
// --graph-backend: its reason to exist is the regime where that is the only
// option. Collision counts are 0 on the light path (documented in
// stream_workload.hpp); message accounting is exact either way.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/stream_workload.hpp"
#include "analysis/throughput.hpp"
#include "analysis/trial_runner.hpp"
#include "graph/implicit_gnp.hpp"
#include "util/stats.hpp"

namespace radio {
namespace {

constexpr std::uint32_t kPipelineDepth = 2;

/// λ fractions of the GHK bound, ascending: the top point sits above
/// decay's giant-n capacity so the sweep shows both regimes.
constexpr double kRateFractions[] = {0.01, 0.05, 0.3};

std::string trajectory_string(const StreamMetrics& metrics) {
  std::string out;
  for (const QueueSample& sample : metrics.trajectory) {
    if (!out.empty()) out += ' ';
    out += std::to_string(sample.round) + ":" +
           std::to_string(sample.waiting);
  }
  return out;
}

}  // namespace

ExperimentResult run_e18_stream_giant(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E18";
  result.title =
      "Giant-n streaming on the implicit backend: queue stability over long "
      "horizons";
  result.table = Table({"n", "d", "rate", "rate_frac", "delivered",
                        "throughput", "waiting_end", "backlog_growth",
                        "stable", "queue_traj", "trials"});

  const NodeId n = config.quick ? 50'000 : 1'000'000;
  const double d = 3.0 * std::log(static_cast<double>(n));
  const double p = d / static_cast<double>(n);
  const double bound = ghk_throughput_bound(n);
  const std::uint32_t horizon =
      config.horizon > 0 ? static_cast<std::uint32_t>(config.horizon)
                         : (config.quick ? 3000u : 8000u);
  // Giant-n trials cost seconds each; a fraction of the Monte-Carlo budget
  // buys the stability verdict (the per-trial signal is n-sized, not noisy).
  const int trials = std::max(1, config.trials / 8);

  std::vector<double> rates;
  if (config.rate > 0.0) {
    rates.push_back(config.rate);
  } else {
    for (const double frac : kRateFractions) rates.push_back(frac * bound);
  }

  std::vector<StabilityPoint> points;
  std::uint64_t cell = 0;
  for (const double rate : rates) {
    const std::uint64_t cell_seed = Rng::for_stream(config.seed, cell++)();
    const auto runs = run_trials<StreamMetrics>(
        trials, cell_seed, [&](int t, Rng& rng) {
          const ImplicitGnp g(n, p, rng());
          StreamConfig stream_config;
          stream_config.rate = rate;
          stream_config.horizon = horizon;
          stream_config.seed = cell_seed;
          stream_config.stream = static_cast<std::uint64_t>(t);
          stream_config.trajectory_samples = 4;
          return run_decay_stream(g, kPipelineDepth, stream_config);
        });
    std::vector<double> throughputs, growths;
    std::uint64_t delivered = 0, waiting_end = 0;
    for (const StreamMetrics& m : runs) {
      throughputs.push_back(m.throughput());
      growths.push_back(backlog_growth(m));
      delivered += m.delivered;
      waiting_end += m.waiting_at_horizon;
    }
    const double growth = mean(growths);
    const bool stable = stream_stable(rate, growth);
    points.push_back(StabilityPoint{rate, growth, stable});
    result.table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(d, 1)
        .cell(rate, 6)
        .cell(rate / bound, 3)
        .cell(delivered)
        .cell(mean(throughputs), 6)
        .cell(waiting_end)
        .cell(growth, 6)
        .cell(stable ? "yes" : "no")
        .cell(trajectory_string(runs.front()))
        .cell(static_cast<std::uint64_t>(runs.size()));
  }

  result.note("stability knee at n=" + std::to_string(n) + ": lambda* = " +
              format_double(stability_knee(points), 6) + " (GHK bound " +
              format_double(bound, 6) +
              "); queue_traj is trial 0's round:waiting trajectory.");
  result.note(
      "implicit backend only (ignores --graph-backend): the graph is "
      "sampled on demand per neighborhood query, collisions are not counted "
      "on this light path.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e18, "E18",
    "Giant-n streaming on the implicit backend: queue stability over long "
    "horizons",
    run_e18_stream_giant)

}  // namespace radio
