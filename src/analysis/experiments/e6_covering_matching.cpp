// E6 — Lemma 4 and Proposition 2: coverings and matchings between random
// sets, the machinery behind Theorem 5's selective and mop-up phases.
//
// Scenarios on G(n,p) with disjoint random X, Y:
//   (a) Lemma 4 statement 1: sampling X at rate 1/d independently covers a
//       constant fraction of Y — measured as covered/|Y| across |Y| scales;
//   (b) Lemma 4 statement 2: when |X|/|Y| = Ω(d²) a full independent
//       matching (private informant per y) exists — measured success rate;
//   (c) Proposition 2: a greedy minimal covering of Y yields an independent
//       matching of exactly its size — verified structurally.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "graph/covering.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {
namespace {

/// Random disjoint (X, Y) with the requested sizes.
struct Split {
  std::vector<NodeId> x, y;
};
Split random_split(NodeId n, std::size_t x_size, std::size_t y_size,
                   Rng& rng) {
  std::vector<NodeId> ids(n);
  for (NodeId v = 0; v < n; ++v) ids[v] = v;
  for (std::size_t i = 0; i < x_size + y_size && i < ids.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniform_below(ids.size() - i));
    std::swap(ids[i], ids[j]);
  }
  Split split;
  split.x.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(x_size));
  split.y.assign(ids.begin() + static_cast<std::ptrdiff_t>(x_size),
                 ids.begin() + static_cast<std::ptrdiff_t>(x_size + y_size));
  return split;
}

}  // namespace

ExperimentResult run_e6_covering_matching(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E6";
  result.title = "Lemma 4 / Proposition 2: independent coverings & matchings";
  result.table = Table({"scenario", "|X|", "|Y|", "trials", "metric", "value",
                        "paper prediction"});

  const NodeId n = config.quick ? (1 << 13) : (1 << 15);
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);
  const double d = ln_n * ln_n;
  const GnpParams params = GnpParams::with_degree(n, d);

  const auto x_size = static_cast<std::size_t>(0.6 * nd);

  // ---- (a) sampled independent cover at rate 1/d, across |Y| scales.
  const std::size_t y_sizes[] = {
      static_cast<std::size_t>(std::max(4.0, nd / (d * d))),
      static_cast<std::size_t>(nd / d),
      static_cast<std::size_t>(0.3 * nd)};
  for (std::size_t y_size : y_sizes) {
    const auto fractions = run_trials_double(
        config.trials, derive_row_seed(config.seed, stream_tags::kE6CoveringMatching,
                        stream_tags::kE6RowSampledCover, y_size),
        [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng);
          const Split split =
              random_split(instance.graph.num_nodes(), x_size, y_size, rng);
          const SampledCover cover = sample_independent_cover(
              instance.graph, split.x, split.y, 1.0 / d, rng);
          return static_cast<double>(cover.covered.size()) /
                 static_cast<double>(split.y.size());
        });
    const Summary s = summarize(fractions);
    result.table.row()
        .cell("L4.1 sampled cover @ rate 1/d")
        .cell(static_cast<std::uint64_t>(x_size))
        .cell(static_cast<std::uint64_t>(y_size))
        .cell(static_cast<std::uint64_t>(fractions.size()))
        .cell("covered/|Y| mean (min)")
        .cell(format_double(s.mean, 3) + " (" + format_double(s.min, 3) + ")")
        .cell("Omega(1) fraction");
  }

  // ---- (b) full private matching when |X|/|Y| = Omega(d^2).
  for (double scale : {0.5, 1.0, 4.0}) {
    const auto y_size = static_cast<std::size_t>(
        std::max(2.0, static_cast<double>(x_size) / (scale * d * d)));
    const auto successes = run_trials_double(
        config.trials,
        derive_row_seed(config.seed, stream_tags::kE6CoveringMatching,
                        stream_tags::kE6RowPrivateMatching,
                        static_cast<std::uint64_t>(scale * 100)),
        [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng);
          const Split split =
              random_split(instance.graph.num_nodes(), x_size, y_size, rng);
          const FullMatching matching =
              private_neighbor_matching(instance.graph, split.x, split.y);
          if (!matching.complete) return 0.0;
          return is_independent_matching(instance.graph, matching.pairs) ? 1.0
                                                                         : 0.0;
        });
    result.table.row()
        .cell("L4.2 private matching, |X|/|Y|=" +
              format_double(scale, 1) + "*d^2")
        .cell(static_cast<std::uint64_t>(x_size))
        .cell(static_cast<std::uint64_t>(y_size))
        .cell(static_cast<std::uint64_t>(successes.size()))
        .cell("complete+verified rate")
        .cell(mean(successes), 3)
        .cell("-> 1 w.h.p.");
  }

  // ---- (c) Proposition 2 on modest instances (greedy minimal cover is the
  // expensive step).
  {
    const NodeId n2 = config.quick ? 1024 : 4096;
    const double d2 = std::log(static_cast<double>(n2)) * 2.5;
    const GnpParams params2 = GnpParams::with_degree(n2, d2);
    const auto y2 = static_cast<std::size_t>(n2 / 8);
    const auto x2 = static_cast<std::size_t>(n2 / 2);
    struct Prop2 {
      double ok = 0.0;
      double cover_size = 0.0;
    };
    const auto outcomes = run_trials<Prop2>(
        config.trials, derive_row_seed(config.seed, stream_tags::kE6CoveringMatching,
                        stream_tags::kE6RowProposition2,
                        stream_tags::kSubRowNone),
        [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params2, rng);
          const Split split =
              random_split(instance.graph.num_nodes(), x2, y2, rng);
          const std::vector<NodeId> cover =
              greedy_minimal_cover(instance.graph, split.x, split.y);
          Prop2 out;
          if (cover.empty()) return out;  // uncoverable draw
          const std::vector<MatchPair> pairs =
              matching_from_minimal_cover(instance.graph, cover, split.y);
          out.ok = (pairs.size() == cover.size() &&
                    is_independent_matching(instance.graph, pairs))
                       ? 1.0
                       : 0.0;
          out.cover_size = static_cast<double>(cover.size());
          return out;
        });
    std::vector<double> ok, sizes;
    for (const Prop2& o : outcomes) {
      ok.push_back(o.ok);
      sizes.push_back(o.cover_size);
    }
    result.table.row()
        .cell("Prop 2: minimal cover -> matching")
        .cell(static_cast<std::uint64_t>(x2))
        .cell(static_cast<std::uint64_t>(y2))
        .cell(static_cast<std::uint64_t>(outcomes.size()))
        .cell("matching of size |cover| rate")
        .cell(mean(ok), 3)
        .cell("always (deterministic)");
    result.note("Prop 2 mean minimal-cover size: " +
                format_double(mean(sizes), 1) + " (|Y| = " +
                std::to_string(y2) + ").");
  }

  result.note(
      "L4.1 covered fraction concentrates near lambda*e^-lambda with lambda "
      "= |X|/n; L4.2 success flips to 1 once |X|/|Y| clears the d^2 scale; "
      "Prop 2 must hold on every draw.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e6, "E6", "Lemma 4 / Proposition 2: independent coverings & matchings",
    run_e6_covering_matching)

}  // namespace radio
