// E5 — Lemma 3: BFS layers of G(n,p) are near-trees.
//
// Per layer i the lemma predicts (w.h.p.):
//   * |T_i(u)| ≈ d^i until the layers saturate at Θ(n);
//   * only O(|T_i|/d²) nodes of T_i have more than one neighbor in T_{i-1}
//     (multi-parent nodes — the collision hazard for the parity pipeline);
//   * intra-layer edges are rare (O(|T_i|/d³)·|T_i| in the small layers);
//   * siblings group under a common parent in groups of size O(d).
// The driver measures all four on fresh instances and reports the bound
// ratios (measured / predicted scale); bounded ratios reproduce the lemma.
#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/layer_probe.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {

ExperimentResult run_e5_layer_structure(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E5";
  result.title = "Lemma 3: BFS layer structure of G(n,p)";
  result.table = Table({"regime", "layer", "size_mean", "d^i", "size/d^i",
                        "intra_edges", "multi_parent_frac", "1/d^2",
                        "sibling_max", "d"});

  const NodeId n = config.quick ? (1 << 14) : (1 << 16);
  const double nd = static_cast<double>(n);
  const double ln_n = std::log(nd);

  const struct {
    const char* name;
    double d;
  } regimes[] = {{"d=2ln n", 2.0 * ln_n}, {"d=ln^2 n", ln_n * ln_n}};

  for (const auto& regime : regimes) {
    const GnpParams params = GnpParams::with_degree(n, regime.d);

    // Per-trial probes aggregated per layer index.
    struct PerLayer {
      std::vector<double> size, intra, multi_frac, sibling;
    };
    std::map<std::uint32_t, PerLayer> agg;

    const auto probes = run_trials<std::vector<LayerProbeRow>>(
        config.trials,
        derive_row_seed(config.seed, stream_tags::kE5LayerStructure, stable_row_tag(regime.name)),
        [&](int, Rng& rng) {
          const BroadcastInstance instance =
              make_broadcast_instance(params, rng);
          const NodeId source = pick_source(instance.graph, rng);
          const LayerDecomposition layers = bfs_layers(instance.graph, source);
          return probe_layers(instance.graph, layers,
                              instance.params.expected_degree());
        });
    for (const auto& rows : probes) {
      for (const LayerProbeRow& row : rows) {
        PerLayer& bucket = agg[row.layer];
        bucket.size.push_back(static_cast<double>(row.size));
        bucket.intra.push_back(static_cast<double>(row.intra_layer_edges));
        bucket.multi_frac.push_back(row.multi_parent_fraction);
        bucket.sibling.push_back(
            static_cast<double>(row.largest_sibling_group));
      }
    }

    for (const auto& [layer, bucket] : agg) {
      const double predicted =
          std::min(nd, std::pow(regime.d, static_cast<double>(layer)));
      result.table.row()
          .cell(regime.name)
          .cell(static_cast<std::uint64_t>(layer))
          .cell(mean(bucket.size), 1)
          .cell(predicted, 1)
          .cell(mean(bucket.size) / predicted, 3)
          .cell(mean(bucket.intra), 2)
          .cell(mean(bucket.multi_frac), 5)
          .cell(1.0 / (regime.d * regime.d), 5)
          .cell(quantile(bucket.sibling, 0.95), 1)
          .cell(regime.d, 1);
    }
  }

  result.note(
      "lemma checks: size/d^i stays O(1) until saturation; multi_parent_frac "
      "on pre-saturation layers is within a constant of 1/d^2; intra-layer "
      "edges in small layers are O(1); sibling groups are O(d).");
  return result;
}

RADIO_REGISTER_EXPERIMENT(e5, "E5", "Lemma 3: BFS layer structure of G(n,p)",
                          run_e5_layer_structure)

}  // namespace radio
