// E3 — Theorem 7: the fully distributed randomized protocol needs O(ln n)
// rounds. Sweep n at d = ln² n (inside the theorem's p >= ln^δ n / n regime,
// δ = 2), run both the paper's protocol (selective tail restricted to nodes
// informed by round D) and the all-informed-tail variant, and fit
// rounds ≈ a·ln n + b for each.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/distributed.hpp"
#include "sim/runner.hpp"
#include "util/fit.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {

ExperimentResult run_e3_distributed_scaling(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E3";
  result.title = "Theorem 7: distributed broadcast rounds vs n (target ln n)";
  result.table = Table({"variant", "n", "d", "trials", "rounds_mean",
                        "rounds_p95", "ln n", "mean/ln n", "completed"});

  std::vector<NodeId> grid = {1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14,
                              1 << 15};
  if (!config.quick) {
    grid.push_back(1 << 16);
    grid.push_back(1 << 17);
    grid.push_back(1 << 18);
  }

  const struct {
    const char* label;
    bool all_informed_tail;
  } variants[] = {{"paper tail", false}, {"all-informed tail", true}};

  for (const auto& variant : variants) {
    std::vector<double> fit_x, fit_y;
    for (NodeId n : grid) {
      const double nd = static_cast<double>(n);
      const double ln_n = std::log(nd);
      const double d = ln_n * ln_n;
      const GnpParams params = GnpParams::with_degree(n, d);
      const auto max_rounds = static_cast<std::uint32_t>(60.0 * ln_n);

      struct Trial {
        double rounds = 0;
        bool completed = false;
      };
      const auto trials = run_trials<Trial>(
          config.trials,
          derive_row_seed(config.seed, stream_tags::kE3DistributedScaling, n,
                          variant.all_informed_tail ? 1 : 0),
          [&](int, Rng& rng) {
            const BroadcastInstance instance =
                make_broadcast_instance(params, rng);
            DistributedOptions options;
            options.tail_includes_late_informed = variant.all_informed_tail;
            ElsasserGasieniecBroadcast protocol(options);
            const NodeId source = pick_source(instance.graph, rng);
            const BroadcastRun run =
                broadcast_with(protocol, context_for(instance), instance.graph,
                               source, rng, max_rounds);
            return Trial{static_cast<double>(run.rounds), run.completed};
          });

      std::vector<double> rounds;
      int completed = 0;
      for (const Trial& t : trials) {
        rounds.push_back(t.rounds);
        completed += t.completed ? 1 : 0;
      }
      const Summary s = summarize(rounds);
      result.table.row()
          .cell(variant.label)
          .cell(static_cast<std::uint64_t>(n))
          .cell(d, 1)
          .cell(static_cast<std::uint64_t>(trials.size()))
          .cell(s.mean, 2)
          .cell(s.p95, 1)
          .cell(ln_n, 2)
          .cell(s.mean / ln_n, 3)
          .cell(std::to_string(completed) + "/" +
                std::to_string(trials.size()));
      fit_x.push_back(ln_n);
      fit_y.push_back(s.mean);
    }
    const LinearFit fit = fit_line(fit_x, fit_y);
    result.note_fit(
        std::string(variant.label) + ": rounds ~= " +
            format_double(fit.coefficients[0], 3) + "*ln n + " +
            format_double(fit.coefficients[1], 2) + "  (R^2 = " +
            format_double(fit.r_squared, 4) + ")",
        ModelFitNote{variant.label,
                     "a*ln n + b",
                     {{"ln n", fit.coefficients[0]},
                      {"intercept", fit.coefficients[1]}},
                     fit.r_squared});
  }
  result.note(
      "paper shape check: positive slope with high R^2 against ln n "
      "reproduces the O(ln n) w.h.p. bound of Theorem 7.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e3, "E3", "Theorem 7: distributed broadcast rounds vs n (target ln n)",
    run_e3_distributed_scaling)

}  // namespace radio
