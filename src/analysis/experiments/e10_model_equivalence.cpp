// E10 — model equivalence: "our results also hold for the Erdős–Rényi
// graphs" (§1.1/§2). G(n,m) with m = n·d/2 edges and G(n,p) with p = d/n are
// contiguous for these properties, so both algorithms should post the same
// round counts on both models. The driver runs the matched pair across a
// small n grid and reports the Gnm/Gnp round ratios, which should hover
// around 1.
#include <cmath>
#include <string>
#include <vector>

#include "analysis/experiment_registry.hpp"
#include "analysis/experiments.hpp"
#include "analysis/trial_runner.hpp"
#include "analysis/workload.hpp"
#include "core/centralized.hpp"
#include "core/distributed.hpp"
#include "graph/components.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/stream_tags.hpp"

namespace radio {
namespace {

/// Connected G(n,m) instance via resampling then giant-component fallback —
/// mirrors make_broadcast_instance for the Erdős–Rényi model.
Graph make_gnm_instance(NodeId n, EdgeCount m, Rng& rng) {
  Graph last;
  for (int attempt = 0; attempt < 8; ++attempt) {
    last = generate_gnm(n, m, rng);
    if (is_connected(last)) return last;
  }
  return largest_component_subgraph(last).graph;
}

}  // namespace

ExperimentResult run_e10_model_equivalence(const ExperimentConfig& config) {
  ExperimentResult result;
  result.id = "E10";
  result.title = "Gilbert G(n,p) vs Erdos-Renyi G(n,m): same broadcast times";
  result.table = Table({"algorithm", "n", "d", "rounds Gnp", "rounds Gnm",
                        "Gnm/Gnp", "trials"});

  std::vector<NodeId> grid = {1 << 10, 1 << 12};
  if (!config.quick) grid.push_back(1 << 14);

  for (NodeId n : grid) {
    const double nd = static_cast<double>(n);
    const double ln_n = std::log(nd);
    const double d = ln_n * ln_n;
    const GnpParams params = GnpParams::with_degree(n, d);
    const auto m = static_cast<EdgeCount>(nd * d / 2.0);
    const auto budget = static_cast<std::uint32_t>(80.0 * ln_n);

    struct Trial {
      double cen_gnp = 0, cen_gnm = 0, dist_gnp = 0, dist_gnm = 0;
    };
    const auto trials = run_trials<Trial>(
        config.trials, derive_row_seed(config.seed, stream_tags::kE10ModelEquivalence, n),
        [&](int, Rng& rng) {
          Trial t;
          {
            const BroadcastInstance inst = make_broadcast_instance(params, rng);
            Rng build_rng(rng());
            const CentralizedResult built = build_centralized_schedule(
                inst.graph, 0, d, build_rng);
            t.cen_gnp = built.report.total_rounds;
            ElsasserGasieniecBroadcast protocol;
            Rng run_rng(rng());
            t.dist_gnp = broadcast_with(protocol, context_for(inst),
                                        inst.graph, 0, run_rng, budget)
                             .rounds;
          }
          {
            const Graph gnm = make_gnm_instance(n, m, rng);
            Rng build_rng(rng());
            const CentralizedResult built =
                build_centralized_schedule(gnm, 0, d, build_rng);
            t.cen_gnm = built.report.total_rounds;
            ElsasserGasieniecBroadcast protocol;
            Rng run_rng(rng());
            const ProtocolContext ctx{gnm.num_nodes(), d / nd};
            t.dist_gnm =
                broadcast_with(protocol, ctx, gnm, 0, run_rng, budget).rounds;
          }
          return t;
        });

    std::vector<double> cen_gnp, cen_gnm, dist_gnp, dist_gnm;
    for (const Trial& t : trials) {
      cen_gnp.push_back(t.cen_gnp);
      cen_gnm.push_back(t.cen_gnm);
      dist_gnp.push_back(t.dist_gnp);
      dist_gnm.push_back(t.dist_gnm);
    }
    result.table.row()
        .cell("centralized (Thm 5)")
        .cell(static_cast<std::uint64_t>(n))
        .cell(d, 1)
        .cell(mean(cen_gnp), 2)
        .cell(mean(cen_gnm), 2)
        .cell(mean(cen_gnm) / mean(cen_gnp), 3)
        .cell(static_cast<std::uint64_t>(trials.size()));
    result.table.row()
        .cell("distributed (Thm 7)")
        .cell(static_cast<std::uint64_t>(n))
        .cell(d, 1)
        .cell(mean(dist_gnp), 2)
        .cell(mean(dist_gnm), 2)
        .cell(mean(dist_gnm) / mean(dist_gnp), 3)
        .cell(static_cast<std::uint64_t>(trials.size()));
  }

  result.note(
      "paper claim (section 1.1): the bounds hold in both random graph "
      "models; Gnm/Gnp ratios near 1 confirm the algorithms cannot tell the "
      "models apart.");
  return result;
}

RADIO_REGISTER_EXPERIMENT(
    e10, "E10",
    "Gilbert G(n,p) vs Erdos-Renyi G(n,m): same broadcast times",
    run_e10_model_equivalence)

}  // namespace radio
