#include "analysis/bench_cli.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <stdexcept>

#include "util/parse.hpp"

namespace radio {
namespace {

[[noreturn]] void usage_error(const std::string& what) {
  throw std::runtime_error(what);
}

bool looks_like_experiment_id(const std::string& id) {
  if (id.size() < 2 || (id[0] != 'E' && id[0] != 'e')) return false;
  return std::all_of(id.begin() + 1, id.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

std::string uppercase_id(const std::string& id) {
  std::string out = id;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

/// Fetches the value of flag `name`, accepting both `--name value` and
/// `--name=value`. `arg` is the current token; `i` advances past a separate
/// value token.
std::string flag_value(const std::string& name, const std::string& arg,
                       const std::vector<std::string>& args, std::size_t& i) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  if (i + 1 >= args.size()) usage_error(name + " requires a value");
  return args[++i];
}

bool matches_flag(const std::string& arg, const std::string& name) {
  return arg == name || arg.rfind(name + "=", 0) == 0;
}

}  // namespace

std::string lowercase_id(const std::string& id) {
  std::string out = id;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

BenchCommand parse_bench_command(const std::vector<std::string>& args) {
  BenchCommand command;
  if (args.empty()) return command;  // kHelp

  const std::string& verb = args[0];
  if (verb == "help" || verb == "--help" || verb == "-h") return command;
  if (verb == "list") {
    if (args.size() > 1) usage_error("list takes no arguments");
    command.action = BenchCommand::Action::kList;
    return command;
  }
  if (verb != "run")
    usage_error("unknown command '" + verb + "' (expected list or run)");

  command.action = BenchCommand::Action::kRun;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--all") {
      command.all = true;
    } else if (matches_flag(arg, "--trials")) {
      const std::string value = flag_value("--trials", arg, args, i);
      command.trials = static_cast<int>(
          parse_int(value, "--trials", 1, std::numeric_limits<int>::max())
              .value_or_throw());
    } else if (matches_flag(arg, "--seed")) {
      const std::string value = flag_value("--seed", arg, args, i);
      command.seed = parse_u64(value, "--seed").value_or_throw();
    } else if (arg == "--full") {
      command.full = true;
    } else if (arg == "--quick") {
      command.full = false;
    } else if (matches_flag(arg, "--batch")) {
      const std::string value = flag_value("--batch", arg, args, i);
      command.batch = static_cast<int>(
          parse_int(value, "--batch", 1, 4096).value_or_throw());
    } else if (matches_flag(arg, "--rate")) {
      const std::string value = flag_value("--rate", arg, args, i);
      command.rate = parse_double(value, "--rate", 1e-9, 1e9).value_or_throw();
    } else if (matches_flag(arg, "--horizon")) {
      const std::string value = flag_value("--horizon", arg, args, i);
      command.horizon = static_cast<int>(
          parse_int(value, "--horizon", 1, 100'000'000).value_or_throw());
    } else if (matches_flag(arg, "--graph-backend")) {
      const std::string value = flag_value("--graph-backend", arg, args, i);
      const auto choice = graph_backend_from_name(value);
      if (!choice)
        usage_error("--graph-backend: '" + value +
                    "' is not a graph backend (expected auto, csr, bitmap or "
                    "implicit)");
      command.graph_backend = *choice;
    } else if (matches_flag(arg, "--out")) {
      command.out_dir = flag_value("--out", arg, args, i);
      if (command.out_dir.empty()) usage_error("--out requires a directory");
    } else if (matches_flag(arg, "--csv")) {
      command.csv_dir = flag_value("--csv", arg, args, i);
      if (command.csv_dir.empty()) usage_error("--csv requires a directory");
    } else if (arg.rfind("--", 0) == 0) {
      usage_error("unknown flag '" + arg + "'");
    } else if (looks_like_experiment_id(arg)) {
      command.ids.push_back(uppercase_id(arg));
    } else {
      usage_error("'" + arg + "' is not an experiment id (expected E1…E18)");
    }
  }
  if (command.ids.empty() && !command.all)
    usage_error("run requires experiment ids or --all");
  if (!command.ids.empty() && command.all)
    usage_error("pass either explicit ids or --all, not both");
  return command;
}

ExperimentConfig config_for_run(const BenchCommand& command,
                                const std::string& id) {
  const std::string lower = lowercase_id(id);
  ExperimentConfig config = ExperimentConfig::from_environment(lower);
  if (command.trials) config.trials = *command.trials;
  if (command.seed) config.seed = *command.seed;
  if (command.full) config.quick = !*command.full;
  if (command.batch) config.batch = *command.batch;
  if (command.graph_backend) config.graph_backend = *command.graph_backend;
  if (command.rate) config.rate = *command.rate;
  if (command.horizon) config.horizon = *command.horizon;
  if (!command.csv_dir.empty())
    config.csv_path = command.csv_dir + "/" + lower + ".csv";
  else if (!command.out_dir.empty())
    config.csv_path = command.out_dir + "/" + lower + ".csv";
  return config;
}

std::string bench_usage() {
  return
      "radio_bench — unified experiment runner (E1…E18)\n"
      "\n"
      "Usage:\n"
      "  radio_bench list                      list registered experiments\n"
      "  radio_bench run <ids...> [flags]      run selected experiments\n"
      "  radio_bench run --all [flags]         run every experiment\n"
      "\n"
      "Flags (override RADIO_* environment variables):\n"
      "  --trials N     Monte-Carlo trials per table row   (RADIO_TRIALS, 16)\n"
      "  --seed S       base RNG seed                      (RADIO_SEED, 42)\n"
      "  --full         large n grids                      (RADIO_FULL=1)\n"
      "  --quick        small n grids (default)\n"
      "  --batch B      sim/batch lane width, 1–4096       (RADIO_BATCH, 1)\n"
      "                 shared-instance probes advance B instances per\n"
      "                 sweep; results are byte-identical for any B\n"
      "  --graph-backend auto|csr|bitmap|implicit\n"
      "                 instance representation      (RADIO_GRAPH_BACKEND,\n"
      "                 auto). auto picks per instance via the cost model;\n"
      "                 implicit switches backend-aware drivers (E2) to the\n"
      "                 giant-n on-demand sampler\n"
      "  --rate L       streaming arrival rate λ, msgs/round (RADIO_RATE).\n"
      "                 E16–E18 only: pins the λ grid to one rate\n"
      "  --horizon R    streaming wall rounds per trial    (RADIO_HORIZON)\n"
      "                 E16–E18 only: overrides the driver's horizon\n"
      "  --out DIR      write CSVs, per-experiment manifests (<id>.manifest\n"
      "                 .json) and a metrics.jsonl stream into DIR\n"
      "  --csv DIR      write CSVs only, legacy RADIO_CSV_DIR layout\n"
      "\n"
      "Tables print to stdout exactly as the legacy bench_e* binaries print\n"
      "them; runner progress goes to stderr. See docs/experiments.md.\n";
}

}  // namespace radio
