#include "analysis/experiment_registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace radio {
namespace detail {

// Link-time anchors defined by RADIO_REGISTER_EXPERIMENT in each driver.
// Referencing them here forces every driver object file (and its static
// registrar) out of libradio_analysis.a into any binary that touches the
// registry. A driver missing from this list would silently vanish from
// registry-only binaries — tests/analysis/test_registry.cpp counts to 18.
void experiment_anchor_e1();
void experiment_anchor_e2();
void experiment_anchor_e3();
void experiment_anchor_e4();
void experiment_anchor_e5();
void experiment_anchor_e6();
void experiment_anchor_e7();
void experiment_anchor_e8();
void experiment_anchor_e9();
void experiment_anchor_e10();
void experiment_anchor_e11();
void experiment_anchor_e12();
void experiment_anchor_e13();
void experiment_anchor_e14();
void experiment_anchor_e15();
void experiment_anchor_e16();
void experiment_anchor_e17();
void experiment_anchor_e18();

namespace {

void touch_all_anchors() {
  experiment_anchor_e1();
  experiment_anchor_e2();
  experiment_anchor_e3();
  experiment_anchor_e4();
  experiment_anchor_e5();
  experiment_anchor_e6();
  experiment_anchor_e7();
  experiment_anchor_e8();
  experiment_anchor_e9();
  experiment_anchor_e10();
  experiment_anchor_e11();
  experiment_anchor_e12();
  experiment_anchor_e13();
  experiment_anchor_e14();
  experiment_anchor_e15();
  experiment_anchor_e16();
  experiment_anchor_e17();
  experiment_anchor_e18();
}

}  // namespace
}  // namespace detail

namespace {

std::string canonical_id(const std::string& id) {
  std::string out = id;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

/// Numeric ordinal of "E<k>"; 0 for anything else (sorts first).
int ordinal(const std::string& id) {
  if (id.size() < 2 || id[0] != 'E') return 0;
  int value = 0;
  for (std::size_t i = 1; i < id.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(id[i]))) return 0;
    value = value * 10 + (id[i] - '0');
  }
  return value;
}

std::vector<ExperimentEntry>& storage() {
  static std::vector<ExperimentEntry> entries;
  return entries;
}

}  // namespace

void ExperimentRegistry::register_experiment(const char* id, const char* title,
                                             ExperimentFn fn) {
  const std::string canonical = canonical_id(id);
  for (const ExperimentEntry& entry : storage())
    if (entry.id == canonical)
      throw std::logic_error("duplicate experiment id: " + canonical);
  storage().push_back(ExperimentEntry{canonical, title, fn});
  std::sort(storage().begin(), storage().end(),
            [](const ExperimentEntry& a, const ExperimentEntry& b) {
              return ordinal(a.id) < ordinal(b.id);
            });
}

const std::vector<ExperimentEntry>& ExperimentRegistry::all() {
  detail::touch_all_anchors();
  return storage();
}

const ExperimentEntry* ExperimentRegistry::find(const std::string& id) {
  const std::string canonical = canonical_id(id);
  for (const ExperimentEntry& entry : all())
    if (entry.id == canonical) return &entry;
  return nullptr;
}

}  // namespace radio
