#include "analysis/experiment_config.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/parse.hpp"

namespace radio {

ExperimentConfig ExperimentConfig::from_environment(
    const std::string& experiment_id) {
  ExperimentConfig config;
  if (const char* trials = std::getenv("RADIO_TRIALS"))
    config.trials = static_cast<int>(
        parse_int(trials, "RADIO_TRIALS", 1, std::numeric_limits<int>::max())
            .value_or_throw());
  if (const char* seed = std::getenv("RADIO_SEED"))
    config.seed = parse_u64(seed, "RADIO_SEED").value_or_throw();
  if (const char* full = std::getenv("RADIO_FULL")) {
    // Legacy accepted RADIO_FULL= (empty) as "quick"; keep that spelling.
    config.quick =
        *full == '\0' || !parse_bool(full, "RADIO_FULL").value_or_throw();
  }
  if (const char* batch = std::getenv("RADIO_BATCH"))
    config.batch = static_cast<int>(
        parse_int(batch, "RADIO_BATCH", 1, 4096).value_or_throw());
  if (const char* backend = std::getenv("RADIO_GRAPH_BACKEND")) {
    const auto choice = graph_backend_from_name(backend);
    if (!choice)
      throw std::runtime_error(
          std::string("RADIO_GRAPH_BACKEND: '") + backend +
          "' is not a graph backend (expected auto, csr, bitmap or implicit)");
    config.graph_backend = *choice;
  }
  if (const char* rate = std::getenv("RADIO_RATE")) {
    // Positive finite λ only; 0 would silently mean "driver default".
    config.rate =
        parse_double(rate, "RADIO_RATE", 1e-9, 1e9).value_or_throw();
  }
  if (const char* horizon = std::getenv("RADIO_HORIZON"))
    config.horizon = static_cast<int>(
        parse_int(horizon, "RADIO_HORIZON", 1, 100'000'000).value_or_throw());
  if (const char* dir = std::getenv("RADIO_CSV_DIR"))
    config.csv_path = std::string(dir) + "/" + experiment_id + ".csv";
  return config;
}

void ExperimentResult::note(std::string text) {
  notes.push_back(ExperimentNote{std::move(text), std::nullopt});
}

void ExperimentResult::note_fit(std::string text, ModelFitNote fit) {
  notes.push_back(ExperimentNote{std::move(text), std::move(fit)});
}

std::vector<const ModelFitNote*> ExperimentResult::fits() const {
  std::vector<const ModelFitNote*> out;
  for (const ExperimentNote& n : notes)
    if (n.fit) out.push_back(&*n.fit);
  return out;
}

void ExperimentResult::present(const ExperimentConfig& config) const {
  table.print(id + " — " + title);
  for (const ExperimentNote& n : notes)
    std::printf("  %s\n", n.text.c_str());
  if (!config.csv_path.empty()) {
    if (table.write_csv(config.csv_path))
      std::printf("  [csv written to %s]\n", config.csv_path.c_str());
    else
      std::printf("  [failed to write csv to %s]\n", config.csv_path.c_str());
  }
  std::fflush(stdout);
}

}  // namespace radio
