#include "analysis/experiment_config.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace radio {

ExperimentConfig ExperimentConfig::from_environment(
    const std::string& experiment_id) {
  ExperimentConfig config;
  if (const char* trials = std::getenv("RADIO_TRIALS"))
    config.trials = std::max(1, std::atoi(trials));
  if (const char* seed = std::getenv("RADIO_SEED"))
    config.seed = std::strtoull(seed, nullptr, 10);
  if (const char* full = std::getenv("RADIO_FULL"))
    config.quick = std::string(full) == "0" || std::string(full).empty();
  if (const char* dir = std::getenv("RADIO_CSV_DIR"))
    config.csv_path = std::string(dir) + "/" + experiment_id + ".csv";
  return config;
}

void ExperimentResult::present(const ExperimentConfig& config) const {
  table.print(id + " — " + title);
  for (const std::string& note : notes) std::printf("  %s\n", note.c_str());
  if (!config.csv_path.empty()) {
    if (table.write_csv(config.csv_path))
      std::printf("  [csv written to %s]\n", config.csv_path.c_str());
    else
      std::printf("  [failed to write csv to %s]\n", config.csv_path.c_str());
  }
  std::fflush(stdout);
}

}  // namespace radio
