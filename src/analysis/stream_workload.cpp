#include "analysis/stream_workload.hpp"

namespace radio {

StreamMetrics run_stream_trial(const GnpParams& params,
                               GraphBackendChoice backend,
                               const StreamProtocolFactory& make_protocol,
                               double rate, std::uint32_t horizon,
                               std::uint64_t seed, std::uint64_t stream,
                               Rng& rng) {
  const BroadcastInstance instance =
      make_broadcast_instance(params, rng, backend);
  const std::unique_ptr<StreamingProtocol> protocol = make_protocol();
  RADIO_EXPECTS(protocol != nullptr);
  StreamConfig config;
  config.rate = rate;
  config.horizon = horizon;
  config.seed = seed;
  config.stream = stream;
  StreamSession session(instance.graph, context_for(instance), *protocol,
                        config);
  return session.run();
}

}  // namespace radio
