// Execution engine behind `radio_bench`: resolves experiments through the
// ExperimentRegistry, reproduces the legacy stdout/CSV output byte-for-byte
// (tables go to stdout, runner progress to stderr), and records structured
// provenance — a per-experiment `<id>.manifest.json` plus a metrics.jsonl
// stream — when an output directory is given. Manifest schema: DESIGN.md
// "Observability & provenance"; scripts/bench_report.py folds manifests
// into the BENCH_run.json trajectory.
#pragma once

#include <string>

#include "analysis/bench_cli.hpp"
#include "analysis/experiment_config.hpp"
#include "util/json.hpp"

namespace radio {

/// Manifest schema version; bump when the JSON layout changes shape.
inline constexpr int kManifestSchemaVersion = 1;

/// Build / host facts captured once per runner invocation.
struct RunProvenance {
  std::string git_describe;   ///< `git describe --always --dirty` or "unknown"
  std::string compiler;       ///< e.g. "gcc 12.2.0"
  int openmp_threads = 1;     ///< trial_threads() at run time
  std::string generated_at;   ///< ISO-8601 UTC wall-clock timestamp
};

RunProvenance collect_provenance();

/// One completed experiment run.
struct RunRecord {
  std::string id;  ///< canonical id, "E10"
  ExperimentConfig config;
  ExperimentResult result;
  double wall_seconds = 0.0;
};

/// Runs one registered experiment (no I/O). Throws std::runtime_error if
/// `id` is not registered.
RunRecord run_registered_experiment(const std::string& id,
                                    const ExperimentConfig& config);

/// The manifest document for a run (schema_version, id, title, config,
/// provenance, wall_seconds, table columns+rows, typed fits, note texts).
Json manifest_json(const RunRecord& record, const RunProvenance& provenance);

/// The JSONL metric lines for a run: one object per table row plus one
/// trailing summary object. Each line is compact (single-line) JSON.
std::vector<std::string> metrics_lines(const RunRecord& record);

/// Full CLI entry point (parse → run → present → write artifacts).
/// Returns the process exit code: 0 on success, 2 on usage/lookup errors,
/// 1 on I/O failures.
int run_bench_cli(int argc, const char* const* argv);

}  // namespace radio
