// Command-line surface of the unified `radio_bench` runner.
//
//   radio_bench list
//   radio_bench run E3 E7 --trials 32 --seed 7 --full --out results/
//   radio_bench run --all
//
// Flags layer over the legacy RADIO_* environment variables: defaults <
// environment < CLI flag (docs/experiments.md has the full table). Parsing
// is a pure function of argv so tests can exercise precedence without
// spawning processes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/experiment_config.hpp"
#include "graph/backend.hpp"

namespace radio {

struct BenchCommand {
  enum class Action { kHelp, kList, kRun };

  Action action = Action::kHelp;
  std::vector<std::string> ids;  ///< canonical uppercase; empty with all=true
  bool all = false;              ///< run every registered experiment

  // CLI overrides; unset fields fall through to RADIO_* env vars / defaults.
  std::optional<int> trials;
  std::optional<std::uint64_t> seed;
  std::optional<bool> full;   ///< --full → true, --quick → false
  std::optional<int> batch;   ///< --batch: sim/batch lane width (1–4096)
  /// --graph-backend: auto | csr | bitmap | implicit (graph/backend.hpp)
  std::optional<GraphBackendChoice> graph_backend;
  /// --rate: Poisson arrival rate λ for the streaming experiments E16–E18
  /// (positive, pins the drivers' λ grid to one rate)
  std::optional<double> rate;
  /// --horizon: wall rounds per streaming trial (E16–E18)
  std::optional<int> horizon;

  std::string out_dir;  ///< --out: CSVs + manifests + metrics.jsonl here
  std::string csv_dir;  ///< --csv: CSVs only (legacy RADIO_CSV_DIR shape)
};

/// Parses the arguments after argv[0]. Throws std::runtime_error with a
/// user-facing message on malformed input (unknown flag, missing value,
/// `run` without ids or --all, non-positive --trials, malformed id).
BenchCommand parse_bench_command(const std::vector<std::string>& args);

/// The effective config for one experiment of a `run` command: starts from
/// ExperimentConfig::from_environment (env vars or defaults), then applies
/// the command's overrides. CSV destination precedence:
/// --csv dir > --out dir > RADIO_CSV_DIR > none. `id` is canonical ("E10");
/// CSV files keep the legacy lowercase name (e10.csv).
ExperimentConfig config_for_run(const BenchCommand& command,
                                const std::string& id);

/// Lowercase form of an experiment id, used for legacy-compatible file names.
std::string lowercase_id(const std::string& id);

/// The `radio_bench --help` text.
std::string bench_usage();

}  // namespace radio
