#include "analysis/workload.hpp"

#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "util/assert.hpp"

namespace radio {

BroadcastInstance make_broadcast_instance(const GnpParams& params, Rng& rng,
                                          GraphBackendChoice backend) {
  RADIO_EXPECTS(params.n >= 2);
  BroadcastInstance instance;
  instance.params = params;

  constexpr int kAttempts = 8;
  Graph last;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    last = generate_gnp_backend(params, rng, backend);
    if (is_connected(last)) {
      instance.graph = std::move(last);
      instance.resampled = attempt > 0;
      instance.realized_mean_degree = degree_stats(instance.graph).mean_degree;
      return instance;
    }
  }
  instance.resampled = true;
  instance.giant_component = true;
  instance.graph = largest_component_subgraph(last).graph;
  RADIO_ENSURES(instance.graph.num_nodes() >= 1);
  // The subgraph is smaller than the requested n: record the realized node
  // count so manifests and ProtocolContext consumers see the graph that
  // actually ran, not the one that was asked for. p is preserved, so
  // expected_degree() now reflects the realized instance too. Degenerate
  // 1-node components (p ~ 0) are valid: the broadcast is trivially complete
  // and realized_mean_degree is 0.
  instance.params.n = instance.graph.num_nodes();
  instance.realized_mean_degree = degree_stats(instance.graph).mean_degree;
  return instance;
}

NodeId pick_source(const Graph& g, Rng& rng) {
  RADIO_EXPECTS(g.num_nodes() > 0);
  return static_cast<NodeId>(rng.uniform_below(g.num_nodes()));
}

ProtocolContext context_for(const BroadcastInstance& instance) noexcept {
  return ProtocolContext{instance.graph.num_nodes(), instance.params.p};
}

}  // namespace radio
