#include "analysis/workload.hpp"

#include "graph/components.hpp"
#include "graph/degree.hpp"
#include "util/assert.hpp"

namespace radio {

BroadcastInstance make_broadcast_instance(const GnpParams& params, Rng& rng) {
  RADIO_EXPECTS(params.n >= 2);
  BroadcastInstance instance;
  instance.params = params;

  constexpr int kAttempts = 8;
  Graph last;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    last = generate_gnp(params, rng);
    if (is_connected(last)) {
      instance.graph = std::move(last);
      instance.resampled = attempt > 0;
      instance.realized_mean_degree = degree_stats(instance.graph).mean_degree;
      return instance;
    }
  }
  instance.resampled = true;
  instance.giant_component = true;
  instance.graph = largest_component_subgraph(last).graph;
  RADIO_ENSURES(instance.graph.num_nodes() >= 1);
  instance.realized_mean_degree = degree_stats(instance.graph).mean_degree;
  return instance;
}

NodeId pick_source(const Graph& g, Rng& rng) {
  RADIO_EXPECTS(g.num_nodes() > 0);
  return static_cast<NodeId>(rng.uniform_below(g.num_nodes()));
}

ProtocolContext context_for(const BroadcastInstance& instance) noexcept {
  return ProtocolContext{instance.graph.num_nodes(), instance.params.p};
}

}  // namespace radio
