// Sustained-throughput analysis shared by the streaming experiments
// (E16–E18): the Ghaffari–Haeupler–Khabbazian reference bound, backlog
// growth as the stability statistic, and knee detection over a λ grid.
//
// GHK ("A Bound on the Throughput of Radio Networks", PAPERS.md) show no
// radio network protocol can sustain more than O(1/log n) messages per
// round; we use 1/log2(n) as the dimensionless reference curve. The
// reproduction's pipelines sit BELOW it — decay pays its own log factor per
// broadcast — so the measured stability knee landing at or under the bound
// is the sanity check bench_report.py --check gates on, not a tightness
// claim.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "sim/stream/stream_session.hpp"

namespace radio {

/// The GHK throughput reference: 1 / log2(n) messages per round.
inline double ghk_throughput_bound(NodeId n) noexcept {
  return n < 2 ? 1.0 : 1.0 / std::log2(static_cast<double>(n));
}

/// Queue growth rate over the horizon's second half, in messages per round:
/// (waiting at horizon - waiting at horizon/2) / (horizon/2), clamped at 0.
/// The first half is discarded as warm-up (the pipeline starts empty).
double backlog_growth(const StreamMetrics& metrics) noexcept;

/// Absolute tolerance on backlog growth, in messages per round. Backlog is
/// integer-valued, so a single message of end-of-horizon fluctuation reads
/// as 1/(horizon/2) ≈ 0.002 growth at the default horizons — without a
/// floor, that granularity flips tiny-λ points (where 10% of λ is smaller
/// than one message) non-monotonically.
inline constexpr double kStableGrowthTolerance = 0.002;

/// Stability verdict for one (rate, growth) measurement: the queue is
/// stable when the second-half backlog grows at under 10% of the offered
/// load (plus the one-message granularity floor above) — a draining queue
/// measures ~0, a saturated one measures ~(λ - μ).
inline bool stream_stable(double rate, double growth) noexcept {
  return growth <= 0.1 * rate + kStableGrowthTolerance;
}

/// One λ point of a throughput sweep.
struct StabilityPoint {
  double rate = 0.0;
  double growth = 0.0;  ///< mean backlog_growth across trials
  bool stable = false;
};

/// The stability knee of an ASCENDING-λ sweep: the largest stable rate
/// before the first unstable one (0 when the very first point is already
/// unstable; the last rate when every point is stable).
double stability_knee(std::span<const StabilityPoint> points) noexcept;

}  // namespace radio
