// The experiment drivers E1…E18 (see DESIGN.md §3). Each regenerates one
// "table" of the reproduction: a Monte-Carlo sweep plus the model fits or
// shape checks that stand in for the paper's asymptotic statements. Every
// driver also registers itself in the ExperimentRegistry
// (experiment_registry.hpp), which is how `radio_bench` and the bench
// wrappers resolve them by id.
#pragma once

#include "analysis/experiment_config.hpp"

namespace radio {

/// E1 — Theorem 5 upper bound: centralized rounds vs n across degree
/// regimes, fitted to a·(ln n / ln d) + b·ln d + c.
ExperimentResult run_e1_centralized_scaling(const ExperimentConfig& config);

/// E2 — Theorem 5 in d: fixed n, sweep density; the ln n/ln d vs ln d
/// crossover (U-shape) of the round count.
ExperimentResult run_e2_centralized_density(const ExperimentConfig& config);

/// E3 — Theorem 7 upper bound: distributed rounds vs n, fitted to
/// a·ln n + b; paper tail vs all-informed tail variant.
ExperimentResult run_e3_distributed_scaling(const ExperimentConfig& config);

/// E4 — protocol shoot-out: Theorem 5 / Theorem 7 / Decay / selective
/// family / round-robin / flooding / single-port rumor spreading.
ExperimentResult run_e4_protocol_comparison(const ExperimentConfig& config);

/// E5 — Lemma 3: layer sizes vs d^i, intra-layer edges, multi-parent
/// fractions, sibling groups.
ExperimentResult run_e5_layer_structure(const ExperimentConfig& config);

/// E6 — Lemma 4 and Proposition 2: sampled independent coverings, private
/// matchings, minimal-cover-to-matching extraction.
ExperimentResult run_e6_covering_matching(const ExperimentConfig& config);

/// E7 — Theorems 6 and 8: adversarial schedule searches; best found
/// completion times vs the ln n and ln n/ln d + ln d scales.
ExperimentResult run_e7_lower_bounds(const ExperimentConfig& config);

/// E8 — §3.1 dense regime p = 1 − f(n): rounds vs ln n / ln(1/f).
ExperimentResult run_e8_dense_regime(const ExperimentConfig& config);

/// E9 — ablations of Theorem 5's design choices (DESIGN.md §7).
ExperimentResult run_e9_phase_ablation(const ExperimentConfig& config);

/// E10 — Gilbert vs Erdős–Rényi model equivalence (§1.1's "results also
/// hold for Erdős–Rényi graphs").
ExperimentResult run_e10_model_equivalence(const ExperimentConfig& config);

/// E11 — extension: crash/loss fault robustness of a pre-planned Theorem-5
/// schedule vs the adaptive Theorem-7 protocol.
ExperimentResult run_e11_fault_robustness(const ExperimentConfig& config);

/// E12 — extension: radio gossiping (all-to-all) round counts.
ExperimentResult run_e12_gossip_scaling(const ExperimentConfig& config);

/// E13 — extension: collision-detection adaptive backoff (no p knowledge)
/// vs Theorem 7 (knows p).
ExperimentResult run_e13_adaptive_backoff(const ExperimentConfig& config);

/// E14 — extension: multi-source broadcast, rounds vs source count k.
ExperimentResult run_e14_multisource(const ExperimentConfig& config);

/// E15 — extension: structured topologies (hypercube / torus / ring / tree
/// / random-regular) where the diameter term dominates.
ExperimentResult run_e15_structured_topologies(const ExperimentConfig& config);

/// E16 — streaming: throughput vs Poisson arrival rate λ, stability-knee
/// detection against the GHK O(1/log n) reference (DESIGN.md §9).
ExperimentResult run_e16_stream_throughput(const ExperimentConfig& config);

/// E17 — streaming: per-message latency distribution at fixed λ fractions
/// of the GHK bound.
ExperimentResult run_e17_stream_latency(const ExperimentConfig& config);

/// E18 — streaming: queue stability over long horizons at giant n on the
/// implicit G(n,p) backend.
ExperimentResult run_e18_stream_giant(const ExperimentConfig& config);

}  // namespace radio
