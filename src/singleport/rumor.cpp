#include "singleport/rumor.hpp"

#include "util/assert.hpp"
#include "util/bitset.hpp"

namespace radio {

const char* rumor_mode_name(RumorMode mode) noexcept {
  switch (mode) {
    case RumorMode::kPush:
      return "push";
    case RumorMode::kPull:
      return "pull";
    case RumorMode::kPushPull:
      return "push-pull";
  }
  return "?";
}

RumorRun spread_rumor(const Graph& g, NodeId source, RumorMode mode, Rng& rng,
                      std::uint32_t max_rounds) {
  RADIO_EXPECTS(source < g.num_nodes());
  RADIO_EXPECTS(max_rounds > 0);
  const NodeId n = g.num_nodes();

  Bitset informed(n);
  informed.set(source);
  std::size_t informed_count = 1;
  // Next round's deliveries are staged so the whole round is synchronous
  // (a node informed this round starts participating next round).
  std::vector<NodeId> staged;

  RumorRun run;
  const bool push = mode != RumorMode::kPull;
  const bool pull = mode != RumorMode::kPush;

  for (std::uint32_t round = 1; round <= max_rounds; ++round) {
    if (informed_count == n) break;
    staged.clear();
    for (NodeId v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) continue;
      if (push && informed.test(v)) {
        const NodeId target = nbrs[rng.uniform_below(nbrs.size())];
        ++run.messages;
        if (!informed.test(target)) staged.push_back(target);
      }
      if (pull && !informed.test(v)) {
        const NodeId contact = nbrs[rng.uniform_below(nbrs.size())];
        ++run.messages;
        if (informed.test(contact)) staged.push_back(v);
      }
    }
    for (NodeId w : staged)
      if (informed.set_if_clear(w)) ++informed_count;
    ++run.rounds;
  }
  run.completed = informed_count == n;
  run.informed = informed_count;
  return run;
}

}  // namespace radio
