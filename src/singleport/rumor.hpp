// The single-port rumor-spreading substrate — the related-work comparison
// model (§1.2: Frieze–Molloy, Chen, Feige et al.).
//
// Unlike the radio model there is no shared channel and no collision: in
// each round an informed node contacts ONE neighbor (push), or an uninformed
// node contacts one neighbor hoping it knows (pull), or both (push-pull).
// Feige et al. show push completes in O(log n) rounds on G(n,p) above the
// connectivity threshold. E4 places these next to the radio protocols to
// show that the paper's O(ln n) radio bound matches the single-port rate
// despite the collision channel.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace radio {

enum class RumorMode {
  kPush,      ///< informed nodes push to a random neighbor
  kPull,      ///< uninformed nodes pull from a random neighbor
  kPushPull,  ///< both per round
};

struct RumorRun {
  bool completed = false;
  std::uint32_t rounds = 0;
  std::uint64_t messages = 0;  ///< total contacts made
  std::size_t informed = 0;
};

/// Simulates rumor spreading from `source` until every node is informed or
/// `max_rounds` elapse.
RumorRun spread_rumor(const Graph& g, NodeId source, RumorMode mode, Rng& rng,
                      std::uint32_t max_rounds);

/// Human-readable mode name for tables.
const char* rumor_mode_name(RumorMode mode) noexcept;

}  // namespace radio
