// Broadcast schedules: the centralized model's artifact. A schedule fixes,
// for every round, exactly which nodes transmit; Theorem 5's algorithm is a
// schedule *builder*, and Theorem 6's adversary enumerates schedule families.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace radio {

class BroadcastSession;

struct Schedule {
  /// rounds[t] = nodes transmitting in round t+1.
  std::vector<std::vector<NodeId>> rounds;

  /// Optional human-readable phase annotation: phase_of[t] labels round t+1.
  /// Sizes match `rounds` when present; empty when unused.
  std::vector<std::string> phase_of;

  std::size_t length() const noexcept { return rounds.size(); }

  /// Total transmissions across all rounds.
  std::uint64_t total_transmissions() const noexcept;
};

/// Outcome of playing a schedule against a session.
struct SchedulePlayback {
  bool completed = false;             ///< all nodes informed by the end
  std::uint32_t rounds_used = 0;      ///< rounds actually played (stops early on completion)
  std::uint64_t collisions = 0;       ///< total collision events
  std::uint32_t protocol_violations = 0;  ///< transmissions by uninformed nodes
};

/// Plays `schedule` on `session`, stopping as soon as the broadcast
/// completes. A transmission by a node not yet informed is legal channel
/// behaviour (it jams) but a violation of the broadcasting protocol; the
/// count is reported so tests can assert legality of built schedules.
SchedulePlayback play_schedule(const Schedule& schedule,
                               BroadcastSession& session,
                               bool stop_when_complete = true);

/// Checks that every transmitter is informed at the moment it transmits,
/// by dry-running the schedule on a fresh session over the same graph.
bool schedule_is_legal(const Schedule& schedule, const Graph& graph,
                       NodeId source);

}  // namespace radio
