#include "sim/schedule.hpp"

#include "sim/session.hpp"
#include "util/assert.hpp"

namespace radio {

std::uint64_t Schedule::total_transmissions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.size();
  return total;
}

SchedulePlayback play_schedule(const Schedule& schedule,
                               BroadcastSession& session,
                               bool stop_when_complete) {
  SchedulePlayback playback;
  for (const auto& transmitters : schedule.rounds) {
    if (stop_when_complete && session.complete()) break;
    for (NodeId t : transmitters)
      if (!session.informed(t)) ++playback.protocol_violations;
    const RoundStats& stats = session.step(transmitters);
    playback.collisions += stats.collisions;
    ++playback.rounds_used;
  }
  playback.completed = session.complete();
  return playback;
}

bool schedule_is_legal(const Schedule& schedule, const Graph& graph,
                       NodeId source) {
  RADIO_EXPECTS(source < graph.num_nodes());
  BroadcastSession session(graph, source);
  for (const auto& transmitters : schedule.rounds) {
    for (NodeId t : transmitters)
      if (!session.informed(t)) return false;
    session.step(transmitters);
  }
  return true;
}

}  // namespace radio
