// Session trace rendering: turns a session's round history into a table for
// examples and debugging (informed curve, collision profile).
#pragma once

#include "sim/session.hpp"
#include "util/table.hpp"

namespace radio {

/// One row per executed round: round, transmitters, newly informed,
/// collisions, redundant receptions, cumulative informed.
Table trace_table(const BroadcastSession& session);

/// Compact single-line summary, e.g. for example binaries:
/// "completed in 17 rounds, 12 collisions, 1024/1024 informed".
std::string trace_summary(const BroadcastSession& session);

}  // namespace radio
