#include "sim/channel_kernel.hpp"

#include <bit>

#include "util/assert.hpp"

namespace radio {

EdgeCount sum_transmitter_degrees(
    const Graph& g, std::span<const NodeId> transmitters) noexcept {
  EdgeCount sum = 0;
  for (NodeId t : transmitters) sum += g.degree(t);
  return sum;
}

void DenseRoundAccumulator::accumulate(const Graph& g,
                                       std::span<const NodeId> transmitters) {
  const NodeId n = g.num_nodes();
  if (seen_once_.size() != n) {
    seen_once_ = Bitset(n);
    seen_twice_ = Bitset(n);
  } else {
    seen_once_.clear_all();
    seen_twice_.clear_all();
  }
  const std::span<const std::uint64_t> bitmap = g.adjacency_bitmap();
  const std::size_t wpr = g.bitmap_words_per_row();
  std::uint64_t* once = seen_once_.words().data();
  std::uint64_t* twice = seen_twice_.words().data();
  for (NodeId t : transmitters) {
    const std::uint64_t* row =
        bitmap.data() + static_cast<std::size_t>(t) * wpr;
    accumulate_hits_words(once, twice, row, wpr);
  }
}

NodeId unique_transmitting_neighbor(const Graph& g, const Bitset& transmitting,
                                    NodeId w) noexcept {
  const std::span<const std::uint64_t> row = g.adjacency_row(w);
  const std::span<const std::uint64_t> tx = transmitting.words();
  for (std::size_t wi = 0; wi < row.size(); ++wi) {
    const std::uint64_t hit = row[wi] & tx[wi];
    if (hit != 0)
      return static_cast<NodeId>(wi * 64 +
                                 static_cast<std::size_t>(std::countr_zero(hit)));
  }
  RADIO_ENSURES(!"exactly-one-hit listener had no transmitting neighbor");
  return kInvalidNode;
}

}  // namespace radio
