// Drives a protocol against a session until completion or a round budget.
#pragma once

#include <cstdint>

#include "sim/protocol.hpp"
#include "sim/session.hpp"

namespace radio {

struct BroadcastRun {
  bool completed = false;
  std::uint32_t rounds = 0;          ///< rounds executed
  std::uint64_t collisions = 0;      ///< total collision events
  std::uint64_t transmissions = 0;   ///< total transmissions (energy proxy)
  std::size_t informed = 0;          ///< informed nodes at the end
};

/// Runs `protocol` on `session` for at most `max_rounds` rounds, stopping as
/// soon as every node is informed. The protocol's reset() is invoked first.
BroadcastRun run_protocol(Protocol& protocol, const ProtocolContext& ctx,
                          BroadcastSession& session, Rng& rng,
                          std::uint32_t max_rounds);

/// Convenience: fresh session on `g` from `source`, then run_protocol.
BroadcastRun broadcast_with(Protocol& protocol, const ProtocolContext& ctx,
                            const Graph& g, NodeId source, Rng& rng,
                            std::uint32_t max_rounds);

}  // namespace radio
