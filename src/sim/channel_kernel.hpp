// Word-parallel dense-round channel kernel, shared by RadioEngine,
// GossipSession and the centralized builder's round preview.
//
// The sparse sweep costs O(Σ deg(t)) neighbor touches per round, which
// degenerates to O(n²) when d = pn is large — exactly the paper's dense
// regime (§3.1, E8). The kernel instead works on ⌈n/64⌉-word adjacency
// bitmap rows (Graph::adjacency_row): per transmitter t it folds row(t) into
// two accumulator bitmaps with the saturating 2-bit counter update
//
//     seen_twice |= seen_once & row(t);   seen_once |= row(t);
//
// after which, for any listener w,
//     seen_twice[w]                 ⇔ ≥ 2 transmitting neighbors (collision)
//     seen_once[w] & ~seen_twice[w] ⇔ exactly 1 transmitting neighbor.
// Unique senders are recovered per exactly-one listener by scanning
// row(w) & transmitting — rare in the dense regime, where nearly every
// listener collides.
//
// Cost model (dense_round_pays): the sparse sweep touches Σ deg(t) adjacency
// entries with random 1-byte writes; the kernel moves (|T| + c)·⌈n/64⌉
// sequential words. Both paths are exact — identical Outcomes, delivered
// sets and observations — so the choice is purely a performance decision and
// determinism is preserved regardless of which path runs.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace radio {

/// Which execution path a round took (recorded into RoundStats).
enum class RoundPath : std::uint8_t {
  kSparse = 0,  ///< per-transmitter adjacency-list sweep
  kDense = 1,   ///< word-parallel bitmap kernel
};

/// Adjacency bitmaps cost n·⌈n/64⌉·8 bytes; above this cap the auto path
/// never builds one (≈ 1 GiB ⇒ n ≲ 92k nodes).
inline constexpr std::size_t kDenseBitmapByteLimit = std::size_t{1} << 30;

/// Σ deg(t) over the transmitter set — the sparse path's exact work measure.
EdgeCount sum_transmitter_degrees(const Graph& g,
                                  std::span<const NodeId> transmitters) noexcept;

/// Cost model: true when the word-parallel kernel is expected to beat the
/// sparse sweep. `sum_deg` is Σ deg(t); the kernel moves roughly
/// (num_tx + 4)·⌈n/64⌉ words (accumulation plus the classification sweeps),
/// and one sequential word op is calibrated at ~2 random neighbor touches.
inline bool dense_round_pays(NodeId n, std::size_t num_tx,
                             EdgeCount sum_deg) noexcept {
  if (num_tx == 0) return false;
  const auto wpr = static_cast<EdgeCount>((static_cast<std::size_t>(n) + 63) / 64);
  const std::size_t bitmap_bytes =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(wpr) *
      sizeof(std::uint64_t);
  if (bitmap_bytes > kDenseBitmapByteLimit) return false;
  return sum_deg > 2 * (static_cast<EdgeCount>(num_tx) + 4) * wpr;
}

/// The seen_once / seen_twice accumulator pair. Scratch is reused across
/// rounds; accumulate() clears it first, so a round costs
/// (|T| + O(1))·⌈n/64⌉ words with no per-round allocation after warm-up.
class DenseRoundAccumulator {
 public:
  /// Folds every transmitter's adjacency row into the accumulators
  /// (building the graph's bitmap cache on first use).
  void accumulate(const Graph& g, std::span<const NodeId> transmitters);

  std::span<const std::uint64_t> once_words() const noexcept {
    return seen_once_.words();
  }
  std::span<const std::uint64_t> twice_words() const noexcept {
    return seen_twice_.words();
  }

 private:
  Bitset seen_once_;
  Bitset seen_twice_;
};

/// Recovers the single transmitting neighbor of an exactly-one-hit listener
/// by scanning row(w) & transmitting word by word.
NodeId unique_transmitting_neighbor(const Graph& g, const Bitset& transmitting,
                                    NodeId w) noexcept;

}  // namespace radio
