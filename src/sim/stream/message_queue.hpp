// Message bookkeeping for sustained-traffic (streaming) workloads.
//
// A StreamSession (stream_session.hpp) simulates a service under load:
// messages arrive at random nodes over time instead of existing once at
// round 0. MessageQueue is the arrival ledger — every message ever enqueued
// stays recorded with its arrival/start/completion rounds, so per-message
// latency and the conservation invariant
//
//     total_enqueued == delivered + in_flight + waiting
//
// are checkable at any point (pinned by tests/sim/test_stream.cpp). The
// queue is FIFO: messages start service in arrival order.
//
// PoissonArrivals is the traffic generator: per round it draws an arrival
// count ~ Poisson(rate) and a uniform origin node per arrival, from its own
// dedicated Rng stream — arrivals are a fixed function of (seed, stream)
// regardless of thread count, batch width, or how the protocol consumes
// randomness (the determinism contract in stream_session.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace radio {

/// Sentinel for "has not happened yet" in StreamMessage round fields.
inline constexpr std::uint32_t kRoundPending = 0xFFFFFFFFu;

/// One message's lifecycle. Latency of a delivered message is
/// completion_round - arrival_round (queueing wait included).
struct StreamMessage {
  std::uint64_t id = 0;           ///< dense, assigned in arrival order
  NodeId origin = 0;              ///< node the message arrives at
  std::uint32_t arrival_round = 0;
  std::uint32_t start_round = kRoundPending;      ///< entered a pipeline slot
  std::uint32_t completion_round = kRoundPending; ///< all nodes informed

  bool started() const noexcept { return start_round != kRoundPending; }
  bool delivered() const noexcept { return completion_round != kRoundPending; }
};

/// FIFO arrival ledger. Started messages are exactly the popped prefix, so
/// the waiting set is a contiguous suffix and every counter is O(1).
class MessageQueue {
 public:
  /// Records an arrival; returns the message id.
  std::uint64_t enqueue(NodeId origin, std::uint32_t round) {
    const std::uint64_t id = messages_.size();
    messages_.push_back(StreamMessage{id, origin, round});
    return id;
  }

  bool has_waiting() const noexcept { return head_ < messages_.size(); }

  /// Pops the oldest waiting message into service, stamping its start round.
  std::uint64_t start_next(std::uint32_t round) {
    RADIO_EXPECTS(has_waiting());
    StreamMessage& m = messages_[head_++];
    m.start_round = round;
    return m.id;
  }

  /// Marks a started, undelivered message delivered in `round`.
  void mark_delivered(std::uint64_t id, std::uint32_t round) {
    RADIO_EXPECTS(id < messages_.size());
    StreamMessage& m = messages_[id];
    RADIO_EXPECTS(m.started() && !m.delivered());
    m.completion_round = round;
    ++delivered_;
  }

  /// Messages enqueued but not yet started.
  std::size_t waiting() const noexcept { return messages_.size() - head_; }
  /// Messages started but not yet delivered.
  std::size_t in_flight() const noexcept {
    return head_ - static_cast<std::size_t>(delivered_);
  }
  std::uint64_t total_enqueued() const noexcept { return messages_.size(); }
  std::uint64_t delivered() const noexcept { return delivered_; }

  /// The conservation invariant; true unless bookkeeping is broken.
  bool conserves() const noexcept {
    return total_enqueued() == delivered_ + in_flight() + waiting();
  }

  const StreamMessage& message(std::uint64_t id) const {
    RADIO_EXPECTS(id < messages_.size());
    return messages_[id];
  }
  const std::vector<StreamMessage>& messages() const noexcept {
    return messages_;
  }

 private:
  std::vector<StreamMessage> messages_;
  std::size_t head_ = 0;         ///< messages_[0, head_) have started
  std::uint64_t delivered_ = 0;
};

/// Poisson traffic source: per round, a count ~ Poisson(rate) of messages
/// arrive, each at an independently uniform node of an n-node network.
class PoissonArrivals {
 public:
  /// `rng` is taken by value: the generator owns its arrival stream.
  PoissonArrivals(double rate, NodeId n, Rng rng) noexcept
      : rate_(rate), n_(n), rng_(rng) {
    RADIO_EXPECTS(rate >= 0.0 && n >= 1);
  }

  /// Draws this round's arrivals, appending one origin per message to `out`
  /// (not cleared). Returns the arrival count.
  std::uint32_t draw(std::vector<NodeId>& out) {
    const std::uint64_t k = rng_.poisson(rate_);
    for (std::uint64_t i = 0; i < k; ++i)
      out.push_back(static_cast<NodeId>(rng_.uniform_below(n_)));
    return static_cast<std::uint32_t>(k);
  }

  double rate() const noexcept { return rate_; }

 private:
  double rate_;
  NodeId n_;
  Rng rng_;
};

}  // namespace radio
