#include "sim/stream/stream_session.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace radio {

StreamSession::StreamSession(const Graph& g, const ProtocolContext& ctx,
                             StreamingProtocol& protocol,
                             const StreamConfig& config)
    : g_(&g), ctx_(ctx), protocol_(&protocol), config_(config) {
  RADIO_EXPECTS(ctx.n == g.num_nodes());
  RADIO_EXPECTS(ctx.n >= 2);
  RADIO_EXPECTS(config.rate >= 0.0);
  RADIO_EXPECTS(config.horizon >= 1);
}

StreamMetrics StreamSession::run() {
  RADIO_EXPECTS(!ran_);
  ran_ = true;

  protocol_->reset(ctx_);
  const std::uint32_t depth = protocol_->pipeline_depth();
  RADIO_EXPECTS(depth >= 1);
  std::vector<Slot> slots(depth);

  PoissonArrivals arrivals(
      config_.rate, ctx_.n,
      Rng::for_stream(config_.seed, kArrivalStreamTag | config_.stream));
  Rng protocol_rng =
      Rng::for_stream(config_.seed, kProtocolStreamTag | config_.stream);

  StreamMetrics metrics;
  metrics.rounds = config_.horizon;
  const std::uint32_t mid = config_.horizon / 2;
  const std::uint32_t stride =
      std::max<std::uint32_t>(1, config_.horizon /
                                     std::max<std::uint32_t>(
                                         1, config_.trajectory_samples));

  std::vector<NodeId> origins;
  std::vector<NodeId> transmitters;
  for (std::uint32_t r = 1; r <= config_.horizon; ++r) {
    // 1. Arrivals.
    origins.clear();
    arrivals.draw(origins);
    for (const NodeId origin : origins) queue_.enqueue(origin, r);

    // 2. Dispatch into the round's owning slot.
    const std::uint32_t s = (r - 1) % depth;
    Slot& slot = slots[s];
    if (!slot.active && queue_.has_waiting()) {
      slot.message_id = queue_.start_next(r);
      slot.session = std::make_unique<BroadcastSession>(
          *g_, queue_.message(slot.message_id).origin);
      slot.local_round = 0;
      slot.active = true;
      protocol_->on_message_start(s);
    }

    // 3. Service one local round of the slot's message.
    if (slot.active) {
      ++slot.local_round;
      transmitters.clear();
      protocol_->select_transmitters(s, slot.local_round, *slot.session,
                                     protocol_rng, transmitters);
      slot.session->step(transmitters);
      metrics.transmissions += transmitters.size();

      // 4. Retire on completion.
      if (slot.session->complete()) {
        queue_.mark_delivered(slot.message_id, r);
        const StreamMessage& m = queue_.message(slot.message_id);
        metrics.latencies.push_back(r - m.arrival_round);
        metrics.collisions += slot.session->total_collisions();
        slot.session.reset();
        slot.active = false;
      }
    }

    metrics.max_waiting =
        std::max<std::uint64_t>(metrics.max_waiting, queue_.waiting());
    if (r == mid) metrics.waiting_mid = queue_.waiting();
    if (r % stride == 0 || r == config_.horizon)
      metrics.trajectory.push_back(
          QueueSample{r, queue_.waiting(),
                      static_cast<std::uint32_t>(queue_.in_flight())});
  }

  for (const Slot& slot : slots)
    if (slot.active) metrics.collisions += slot.session->total_collisions();

  metrics.enqueued = queue_.total_enqueued();
  metrics.delivered = queue_.delivered();
  metrics.waiting_at_horizon = queue_.waiting();
  metrics.in_flight_at_horizon =
      static_cast<std::uint32_t>(queue_.in_flight());
  return metrics;
}

}  // namespace radio
