#include "sim/stream/streaming_protocol.hpp"

#include <utility>

#include "util/assert.hpp"

namespace radio {

PipelinedAdapter::PipelinedAdapter(std::string label, std::uint32_t depth,
                                   SlotProtocolFactory factory)
    : label_(std::move(label)), depth_(depth), factory_(std::move(factory)) {
  RADIO_EXPECTS(depth_ >= 1);
  RADIO_EXPECTS(factory_ != nullptr);
}

void PipelinedAdapter::reset(const ProtocolContext& ctx) {
  ctx_ = ctx;
  slots_.clear();
  slots_.reserve(depth_);
  for (std::uint32_t s = 0; s < depth_; ++s) {
    slots_.push_back(factory_());
    RADIO_EXPECTS(slots_.back() != nullptr);
    // The stream loop never feeds observations; an observation-dependent
    // protocol would silently degrade rather than misbehave loudly.
    RADIO_EXPECTS(!slots_.back()->wants_observations());
  }
}

void PipelinedAdapter::on_message_start(std::uint32_t slot) {
  RADIO_EXPECTS(slot < slots_.size());
  slots_[slot]->reset(ctx_);
}

void PipelinedAdapter::select_transmitters(std::uint32_t slot,
                                           std::uint32_t local_round,
                                           const SessionView& view, Rng& rng,
                                           std::vector<NodeId>& out) {
  RADIO_EXPECTS(slot < slots_.size());
  slots_[slot]->select_transmitters(local_round, view, rng, out);
}

}  // namespace radio
