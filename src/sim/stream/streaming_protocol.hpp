// Multi-message protocol surface for streaming workloads.
//
// A StreamingProtocol serves a PIPELINE of concurrent broadcasts: wall-clock
// rounds are time-divided into `pipeline_depth()` interleaved slots, slot s
// owning every round r with (r - 1) % depth == s. Each slot carries at most
// one in-flight message, and only the owning slot's nodes transmit in a
// round — so messages in different slots can never collide with each other,
// by construction. This is the parity-phase machinery of the paper's
// Theorem 5 (even/odd phases share the channel by round parity) promoted to
// a generic depth-D time division; see DESIGN.md §9.
//
// PipelinedAdapter is the bridge from the existing one-shot Protocol
// implementations: it instantiates one independent Protocol per slot and
// replays each message's broadcast under a LOCAL round counter (1, 2, … per
// message), so a protocol written for "round r of one broadcast" runs
// unmodified inside slot s at wall rounds s+1, s+1+D, s+1+2D, ….
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace radio {

class StreamingProtocol {
 public:
  virtual ~StreamingProtocol() = default;

  virtual std::string name() const = 0;

  /// Number of interleaved slots (>= 1); fixed for the session's lifetime.
  virtual std::uint32_t pipeline_depth() const = 0;

  /// Called once before the session's first round.
  virtual void reset(const ProtocolContext& ctx) = 0;

  /// Called when `slot` adopts a fresh message (its previous one, if any,
  /// completed). The slot's per-message state starts over.
  virtual void on_message_start(std::uint32_t slot) = 0;

  /// Appends slot `slot`'s transmitters for its message-local round
  /// `local_round` (1-based) to `out` (cleared by the caller). `view` is the
  /// per-node knowledge surface of THAT message's broadcast session.
  virtual void select_transmitters(std::uint32_t slot,
                                   std::uint32_t local_round,
                                   const SessionView& view, Rng& rng,
                                   std::vector<NodeId>& out) = 0;
};

/// Factory for the single-message protocol an adapter slot runs.
using SlotProtocolFactory = std::function<std::unique_ptr<Protocol>()>;

/// Wraps any one-shot Protocol into a depth-D streaming pipeline: one
/// independent instance per slot, reset at each message start. The wrapped
/// protocol must not want observations (the stream loop feeds none).
class PipelinedAdapter final : public StreamingProtocol {
 public:
  PipelinedAdapter(std::string label, std::uint32_t depth,
                   SlotProtocolFactory factory);

  std::string name() const override { return label_; }
  std::uint32_t pipeline_depth() const override { return depth_; }
  void reset(const ProtocolContext& ctx) override;
  void on_message_start(std::uint32_t slot) override;
  void select_transmitters(std::uint32_t slot, std::uint32_t local_round,
                           const SessionView& view, Rng& rng,
                           std::vector<NodeId>& out) override;

 private:
  std::string label_;
  std::uint32_t depth_;
  SlotProtocolFactory factory_;
  ProtocolContext ctx_{};
  std::vector<std::unique_ptr<Protocol>> slots_;
};

}  // namespace radio
