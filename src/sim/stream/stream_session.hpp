// Sustained-traffic simulation: a radio network serving a Poisson stream of
// broadcast messages through a pipelined StreamingProtocol.
//
// One StreamSession == one long-lived service run on one graph instance.
// Per wall round r = 1 … horizon:
//
//   1. arrivals — PoissonArrivals draws k ~ Poisson(rate) new messages,
//      each at a uniform origin node, enqueued FIFO;
//   2. dispatch — the round's owning pipeline slot s = (r-1) % depth adopts
//      the oldest waiting message if it is idle (one BroadcastSession per
//      in-flight message, created here);
//   3. service — slot s advances its message by ONE local round: the
//      streaming protocol selects transmitters, the channel kernel executes
//      them (exact collision semantics, sim/engine.hpp);
//   4. retire — if the message's broadcast completed (every node informed),
//      its latency (completion - arrival, queueing included) is recorded and
//      the slot goes idle.
//
// Only the owning slot transmits in a round, so concurrent messages never
// collide with each other (streaming_protocol.hpp). A message whose
// broadcast cannot complete (e.g. flooding wedged by collisions) occupies
// its slot forever — that shows up honestly as queue growth, which is
// exactly what E16's stability sweep measures.
//
// Determinism contract: all randomness comes from two session-owned
// generators derived via Rng::for_stream(seed, tag | stream) — one for
// arrivals, one for protocol coin flips, with disjoint tag bits so neither
// stream can collide with a plain trial stream. A StreamSession is a pure
// function of (graph, context, protocol, config): results are byte-identical
// across thread counts and --batch widths (which parallelize across
// sessions, never inside one); pinned by tests/analysis/
// test_stream_determinism.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/session.hpp"
#include "sim/stream/message_queue.hpp"
#include "sim/stream/streaming_protocol.hpp"
#include "util/stream_tags.hpp"

namespace radio {

/// The session's two sub-stream tag bits live in the central registry
/// (util/stream_tags.hpp, compile-checked against every other tag in the
/// tree); re-exported here because the session is their primary consumer.
using stream_tags::kArrivalStreamTag;
using stream_tags::kProtocolStreamTag;

struct StreamConfig {
  double rate = 0.25;         ///< λ: expected message arrivals per round
  std::uint32_t horizon = 2000;  ///< wall rounds to simulate
  std::uint64_t seed = 42;
  std::uint64_t stream = 0;   ///< trial stream index (one session per trial)
  /// Queue-depth trajectory resolution: about this many evenly spaced
  /// samples over the horizon (at least 1; the final round is always
  /// sampled).
  std::uint32_t trajectory_samples = 8;
};

/// One (round, queue state) trajectory sample.
struct QueueSample {
  std::uint32_t round = 0;
  std::uint64_t waiting = 0;
  std::uint32_t in_flight = 0;
};

struct StreamMetrics {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t waiting_at_horizon = 0;
  std::uint64_t waiting_mid = 0;   ///< queue depth after round horizon/2
  std::uint64_t max_waiting = 0;
  std::uint32_t in_flight_at_horizon = 0;
  std::uint32_t rounds = 0;        ///< == config.horizon
  std::uint64_t transmissions = 0;
  /// Collision events summed over every message's broadcast session. The
  /// giant-n light path (analysis/stream_workload.hpp) does not track
  /// collisions and reports 0 here.
  std::uint64_t collisions = 0;
  /// completion - arrival per delivered message, in delivery order.
  std::vector<std::uint32_t> latencies;
  std::vector<QueueSample> trajectory;

  /// Achieved throughput in messages per round.
  double throughput() const noexcept {
    return rounds == 0 ? 0.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(rounds);
  }
};

class StreamSession {
 public:
  /// The graph and protocol must outlive the session. `ctx.n` must equal
  /// `g.num_nodes()`.
  StreamSession(const Graph& g, const ProtocolContext& ctx,
                StreamingProtocol& protocol, const StreamConfig& config);

  /// Runs the full horizon. Single-use: a second call asserts.
  StreamMetrics run();

  /// The arrival ledger (conservation checks, per-message forensics).
  const MessageQueue& queue() const noexcept { return queue_; }

 private:
  struct Slot {
    std::unique_ptr<BroadcastSession> session;
    std::uint64_t message_id = 0;
    std::uint32_t local_round = 0;
    bool active = false;
  };

  const Graph* g_;
  ProtocolContext ctx_;
  StreamingProtocol* protocol_;
  StreamConfig config_;
  MessageQueue queue_;
  bool ran_ = false;
};

}  // namespace radio
