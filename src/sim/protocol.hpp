// Distributed protocol interface.
//
// A protocol decides, round by round, which nodes transmit. The interface
// hands the protocol the whole session for convenience, but a *fully
// distributed* protocol (the paper's §3.2 setting) must restrict itself to
// per-node knowledge: the node's own informed status, the round it became
// informed, the global clock, and the public parameters n and p. Protocols
// that peek further (topology, the informed set of other nodes) are
// centralized and say so via `is_distributed()`.
#pragma once

#include <string>
#include <vector>

#include "graph/types.hpp"
#include "sim/session.hpp"
#include "sim/session_view.hpp"
#include "util/rng.hpp"

namespace radio {

/// Public parameters every node knows in the distributed model.
struct ProtocolContext {
  NodeId n = 0;      ///< number of nodes
  double p = 0.0;    ///< edge probability (d = p*n)

  double expected_degree() const noexcept { return p * static_cast<double>(n); }
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string name() const = 0;

  /// True if the protocol only uses per-node knowledge (see header comment).
  virtual bool is_distributed() const = 0;

  /// Called once before round 1.
  virtual void reset(const ProtocolContext& ctx) = 0;

  /// Appends this round's transmitters to `out` (cleared by the caller).
  /// `round` is 1-based and equals session.current_round() + 1. The view is
  /// the per-node knowledge surface; BroadcastSession converts implicitly,
  /// and the batch core (sim/batch) builds one per lane per round.
  virtual void select_transmitters(std::uint32_t round,
                                   const SessionView& session, Rng& rng,
                                   std::vector<NodeId>& out) = 0;

  /// Collision-detection MODEL EXTENSION (off in the paper's model): a
  /// protocol returning true here is fed per-node channel observations after
  /// every round via observe(). The base model's protocols leave both as-is.
  virtual bool wants_observations() const { return false; }
  virtual void observe(std::uint32_t /*round*/,
                       std::span<const ChannelObservation> /*observations*/) {}
};

}  // namespace radio
