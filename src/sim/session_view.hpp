// Read-only view of one broadcast's per-node knowledge state — the exact
// surface a Protocol may consult when selecting transmitters.
//
// Protocols used to take `const BroadcastSession&`; narrowing the parameter
// to this view is what lets the batched simulation core (sim/batch) drive
// the SAME protocol implementations lane by lane without materializing a
// full session per lane. The view is a fat pointer (graph + informed set +
// informed-round array), cheap to construct per round; BroadcastSession
// converts implicitly so existing call sites compile unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace radio {

class BroadcastSession;

class SessionView {
 public:
  SessionView(const Graph& g, const Bitset& informed,
              std::span<const std::uint32_t> informed_round,
              std::size_t informed_count) noexcept
      : graph_(&g),
        informed_(&informed),
        informed_round_(informed_round),
        informed_count_(informed_count) {}

  /// Implicit on purpose: run_protocol and the tests hand sessions straight
  /// to Protocol::select_transmitters. Defined in session.cpp.
  SessionView(const BroadcastSession& session) noexcept;  // NOLINT(runtime/explicit)

  const Graph& graph() const noexcept { return *graph_; }

  bool informed(NodeId v) const noexcept { return informed_->test(v); }

  /// Round in which v became informed; kUnreachable if still uninformed.
  /// The source is informed at round 0.
  std::uint32_t informed_round(NodeId v) const noexcept {
    return informed_round_[v];
  }

  std::size_t informed_count() const noexcept { return informed_count_; }

  const Bitset& informed_set() const noexcept { return *informed_; }

 private:
  const Graph* graph_;
  const Bitset* informed_;
  std::span<const std::uint32_t> informed_round_;
  std::size_t informed_count_;
};

}  // namespace radio
