#include "sim/trace.hpp"

#include <sstream>

namespace radio {

Table trace_table(const BroadcastSession& session) {
  Table table({"round", "transmitters", "newly_informed", "collisions",
               "redundant", "informed_total"});
  for (const RoundStats& s : session.history()) {
    table.row()
        .cell(static_cast<std::uint64_t>(s.round))
        .cell(static_cast<std::uint64_t>(s.transmitters))
        .cell(static_cast<std::uint64_t>(s.newly_informed))
        .cell(static_cast<std::uint64_t>(s.collisions))
        .cell(static_cast<std::uint64_t>(s.wasted))
        .cell(s.informed_total);
  }
  return table;
}

std::string trace_summary(const BroadcastSession& session) {
  std::ostringstream out;
  if (session.complete()) {
    out << "completed in " << session.current_round() << " rounds";
  } else {
    out << "incomplete after " << session.current_round() << " rounds";
  }
  out << ", " << session.total_collisions() << " collision events, "
      << session.informed_count() << "/" << session.graph().num_nodes()
      << " informed";
  return out.str();
}

}  // namespace radio
