#include "sim/batch/batch_runner.hpp"

#include <algorithm>
#include <memory>

#include "util/assert.hpp"

namespace radio {

std::size_t batch_state_bytes(const Graph& g, std::uint32_t lanes) noexcept {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const std::size_t plane_words = n * words_for_bits(lanes);
  const std::size_t planes = 4 * plane_words * sizeof(std::uint64_t);
  const std::size_t mirror = words_for_bits(n) * sizeof(std::uint64_t);
  const std::size_t rounds = n * sizeof(std::uint32_t);
  return planes + static_cast<std::size_t>(lanes) * (mirror + rounds);
}

std::uint32_t batch_lanes_for(const Graph& g,
                              std::uint32_t requested) noexcept {
  if (requested < 2 || g.num_nodes() < 2) return 1;
  std::uint32_t lanes = std::min<std::uint32_t>(requested, 4096);
  while (lanes > 1 && batch_state_bytes(g, lanes) > kBatchStateByteLimit)
    lanes /= 2;
  return lanes;
}

BatchDispatch plan_broadcast_batch(const Graph& g, int trials,
                                   const ProtocolFactory& factory,
                                   std::uint32_t requested_lanes) {
  BatchDispatch plan;
  plan.lanes = batch_lanes_for(g, requested_lanes);
  if (plan.lanes < 2) {
    plan.lanes = 1;
    plan.reason = requested_lanes < 2 ? "batching not requested"
                                      : "cost model clamped lanes below 2";
    return plan;
  }
  if (trials < 2) {
    plan.lanes = 1;
    plan.reason = "fewer than 2 trials";
    return plan;
  }
  const std::unique_ptr<Protocol> probe = factory(0);
  RADIO_EXPECTS(probe != nullptr);
  if (probe->wants_observations()) {
    plan.lanes = 1;
    plan.reason = "observation-feedback protocol";
    return plan;
  }
  plan.path = BatchDispatch::Path::kBatched;
  return plan;
}

std::vector<BroadcastRun> run_broadcast_batch(
    const Graph& g, const ProtocolContext& ctx, NodeId source, int trials,
    std::uint64_t seed, std::uint64_t first_stream,
    const ProtocolFactory& factory, std::uint32_t max_rounds,
    std::uint32_t lanes) {
  RADIO_EXPECTS(trials >= 0);
  const BatchDispatch plan = plan_broadcast_batch(g, trials, factory, lanes);
  const std::uint32_t effective = plan.lanes;

  if (plan.path == BatchDispatch::Path::kBatched) {
    BatchScheduler scheduler(g, ctx, effective, max_rounds);
    return scheduler.run(seed, first_stream, trials, source, factory);
  }

  std::vector<BroadcastRun> results(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Rng rng =
        Rng::for_stream(seed, first_stream + static_cast<std::uint64_t>(t));
    const std::unique_ptr<Protocol> protocol = factory(t);
    RADIO_EXPECTS(protocol != nullptr);
    results[static_cast<std::size_t>(t)] =
        broadcast_with(*protocol, ctx, g, source, rng, max_rounds);
  }
  return results;
}

}  // namespace radio
