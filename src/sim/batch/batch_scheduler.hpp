// Drives a queue of broadcast trials through a BatchEngine.
//
// Each lane hosts one trial: its own Protocol instance, its own
// Rng::for_stream(seed, trial_index) stream, and its own round counter in
// the engine. Every sweep steps all occupied lanes by one round; a lane
// whose trial completes (or exhausts the round budget) retires immediately
// and is refilled from the queue WITHOUT waiting for its batch-mates — the
// sweep never stalls on a straggler. When the queue is dry and occupancy
// drops below half, the scheduler compacts surviving lanes into the lowest
// slots so the engine's lane-word stride shrinks with the tail.
//
// Determinism contract: trial t's result equals broadcast_with(factory(t),
// ctx, g, source, Rng::for_stream(seed, first_stream + t), max_rounds)
// byte-for-byte, for ANY lane count — lane packing affects wall time only.
// tests/analysis/test_batch_determinism.cpp pins this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/batch/batch_engine.hpp"
#include "sim/protocol.hpp"
#include "sim/runner.hpp"

namespace radio {

/// Builds the protocol instance for one trial. Called once per trial, from
/// the thread running that trial's scheduler; the factory must be safe to
/// invoke concurrently from parallel schedulers.
using ProtocolFactory = std::function<std::unique_ptr<Protocol>(int trial)>;

class BatchScheduler {
 public:
  /// `lanes` >= 1; a scheduler is reusable across run() calls.
  BatchScheduler(const Graph& g, const ProtocolContext& ctx,
                 std::uint32_t lanes, std::uint32_t max_rounds);

  /// Runs trials [0, trials) from `source`, trial t drawing from
  /// Rng::for_stream(seed, first_stream + t), and returns their
  /// BroadcastRuns in trial order.
  std::vector<BroadcastRun> run(std::uint64_t seed, std::uint64_t first_stream,
                                int trials, NodeId source,
                                const ProtocolFactory& factory);

  /// Lane compactions performed by the most recent run() (tests).
  std::uint32_t compactions() const noexcept { return compactions_; }

 private:
  struct Lane {
    int trial = -1;  ///< -1: empty
    std::unique_ptr<Protocol> protocol;
    Rng rng;
    BroadcastRun partial;
  };

  void start_trial(std::uint32_t lane, int trial, std::uint64_t seed,
                   std::uint64_t first_stream, NodeId source,
                   const ProtocolFactory& factory);

  const Graph* graph_;
  ProtocolContext ctx_;
  std::uint32_t requested_lanes_;
  std::uint32_t max_rounds_;
  std::uint32_t compactions_ = 0;
  std::unique_ptr<BatchEngine> engine_;
  std::vector<Lane> lanes_;
  std::vector<std::uint32_t> active_;
  std::vector<NodeId> tx_buffer_;
};

}  // namespace radio
