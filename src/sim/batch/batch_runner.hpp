// Dispatch seam between per-instance and batched broadcast execution.
//
// Batching requires trials that share ONE graph (the lane planes are slices
// over a single adjacency): workloads that sample a fresh G(n,p) per trial
// (e.g. E1's per-trial instances) are structurally per-instance and use the
// classic RadioEngine path unchanged. For shared-instance workloads the cost
// model here decides how many lanes actually pay:
//
//   * oversized — lane state grows with n·⌈B/64⌉ plane words plus per-lane
//     mirrors; batch_lanes_for clamps B so the whole working set stays under
//     kBatchStateByteLimit (halving until it fits, down to the per-instance
//     path);
//   * observation feedback — protocols that want per-node channel
//     observations (collision-detection extension) need state the planes do
//     not track: per-instance fallback;
//   * degenerate — fewer than 2 trials or fewer than 2 lanes: per-instance.
//
// Whatever path runs, trial t's result is byte-identical: both paths drive
// trial t with Rng::for_stream(seed, first_stream + t) over the same
// engine semantics (the determinism contract in batch_scheduler.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/batch/batch_scheduler.hpp"
#include "sim/runner.hpp"

namespace radio {

/// Total bytes of batch lane state allowed (planes + mirrors); chosen to
/// match the dense kernel's adjacency-bitmap cap (sim/channel_kernel.hpp).
inline constexpr std::size_t kBatchStateByteLimit = std::size_t{1} << 30;

/// Bytes of lane state a B-lane engine holds on g (4 planes of
/// n·⌈B/64⌉ words plus per-lane informed mirror and round array).
std::size_t batch_state_bytes(const Graph& g, std::uint32_t lanes) noexcept;

/// The cost model's lane clamp: the largest power-of-two-ish lane count
/// <= `requested` whose state fits kBatchStateByteLimit (1 when batching
/// does not apply — requested < 2 or the graph is empty).
std::uint32_t batch_lanes_for(const Graph& g, std::uint32_t requested) noexcept;

/// Which execution path the dispatcher chose, and why. Previously the
/// observation-feedback fallback was silent: a caller asking for --batch 64
/// with a wants_observations protocol got per-instance execution with no
/// record, so speedup accounting quietly lied. The plan makes every
/// fallback reportable (and testable — tests/analysis/
/// test_batch_dispatch.cpp pins each reason).
struct BatchDispatch {
  enum class Path { kBatched, kPerInstance };

  Path path = Path::kPerInstance;
  std::uint32_t lanes = 1;    ///< effective lane width (1 on per-instance)
  const char* reason = "";    ///< why per-instance; "" when batched
};

/// Pure cost-model decision for run_broadcast_batch/run_batched_trials:
/// clamps `requested_lanes` via batch_lanes_for and reports per-instance
/// for degenerate trial counts or observation-feedback protocols (probes
/// factory(0) once; `factory` must be pure).
BatchDispatch plan_broadcast_batch(const Graph& g, int trials,
                                   const ProtocolFactory& factory,
                                   std::uint32_t requested_lanes);

/// Runs `trials` broadcasts of factory(t) on the SHARED graph g from
/// `source`, trial t drawing from Rng::for_stream(seed, first_stream + t),
/// batched `lanes` wide when the cost model approves and per-instance
/// otherwise. Serial (no OpenMP): callers already inside a parallel trial
/// region use this directly; top-level callers use run_batched_trials
/// (analysis/trial_runner.hpp) which chunks across threads.
///
/// `factory` must be pure (no side effects): the dispatcher probes
/// factory(0) once to detect observation-feedback protocols.
std::vector<BroadcastRun> run_broadcast_batch(
    const Graph& g, const ProtocolContext& ctx, NodeId source, int trials,
    std::uint64_t seed, std::uint64_t first_stream,
    const ProtocolFactory& factory, std::uint32_t max_rounds,
    std::uint32_t lanes);

}  // namespace radio
