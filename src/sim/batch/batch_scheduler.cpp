#include "sim/batch/batch_scheduler.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace radio {

BatchScheduler::BatchScheduler(const Graph& g, const ProtocolContext& ctx,
                               std::uint32_t lanes, std::uint32_t max_rounds)
    : graph_(&g),
      ctx_(ctx),
      requested_lanes_(lanes),
      max_rounds_(max_rounds) {
  RADIO_EXPECTS(lanes >= 1);
  RADIO_EXPECTS(max_rounds > 0);
}

void BatchScheduler::start_trial(std::uint32_t lane, int trial,
                                 std::uint64_t seed,
                                 std::uint64_t first_stream, NodeId source,
                                 const ProtocolFactory& factory) {
  Lane& slot = lanes_[lane];
  slot.trial = trial;
  slot.protocol = factory(trial);
  RADIO_EXPECTS(slot.protocol != nullptr);
  // Observation feedback needs per-node channel state the batch planes do
  // not track; the dispatch layer (batch_runner) routes such protocols to
  // the per-instance path before a scheduler ever sees them.
  RADIO_EXPECTS(!slot.protocol->wants_observations());
  slot.rng =
      Rng::for_stream(seed, first_stream + static_cast<std::uint64_t>(trial));
  slot.partial = BroadcastRun{};
  slot.protocol->reset(ctx_);
  engine_->open_lane(lane, source);
}

std::vector<BroadcastRun> BatchScheduler::run(std::uint64_t seed,
                                              std::uint64_t first_stream,
                                              int trials, NodeId source,
                                              const ProtocolFactory& factory) {
  RADIO_EXPECTS(trials >= 0);
  std::vector<BroadcastRun> results(static_cast<std::size_t>(trials));
  if (trials == 0) return results;

  const auto lane_count = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      requested_lanes_, static_cast<std::uint64_t>(trials)));
  engine_ = std::make_unique<BatchEngine>(*graph_, lane_count);
  lanes_.clear();
  lanes_.resize(lane_count);
  compactions_ = 0;

  int next_trial = 0;
  int in_flight = 0;
  for (std::uint32_t lane = 0; lane < lane_count && next_trial < trials;
       ++lane) {
    start_trial(lane, next_trial++, seed, first_stream, source, factory);
    ++in_flight;
  }

  while (in_flight > 0) {
    // Retire finished trials and refill their lanes from the queue — a lane
    // executes a round only while incomplete and under budget, exactly
    // run_protocol's loop condition per trial.
    for (std::uint32_t lane = 0; lane < engine_->lane_count(); ++lane) {
      Lane& slot = lanes_[lane];
      while (slot.trial >= 0 && (engine_->complete(lane) ||
                                 slot.partial.rounds >= max_rounds_)) {
        slot.partial.completed = engine_->complete(lane);
        slot.partial.informed = engine_->informed_count(lane);
        results[static_cast<std::size_t>(slot.trial)] = slot.partial;
        slot.trial = -1;
        slot.protocol.reset();
        --in_flight;
        if (next_trial >= trials) break;
        start_trial(lane, next_trial++, seed, first_stream, source, factory);
        ++in_flight;
      }
    }
    if (in_flight == 0) break;

    // Queue dry and the batch mostly retired: remap survivors to the lowest
    // slots when that shrinks the engine's lane-word stride (and with it the
    // per-word cost of every remaining sweep).
    if (next_trial >= trials &&
        static_cast<std::uint32_t>(in_flight) <= engine_->lane_count() / 2 &&
        words_for_bits(static_cast<std::size_t>(in_flight)) <
            engine_->lane_words()) {
      std::vector<std::uint32_t> survivors;
      survivors.reserve(static_cast<std::size_t>(in_flight));
      for (std::uint32_t lane = 0; lane < engine_->lane_count(); ++lane)
        if (lanes_[lane].trial >= 0) survivors.push_back(lane);
      engine_->compact(survivors);
      std::vector<Lane> packed(survivors.size());
      for (std::size_t i = 0; i < survivors.size(); ++i)
        packed[i] = std::move(lanes_[survivors[i]]);
      lanes_ = std::move(packed);
      ++compactions_;
    }

    // Select transmitters lane by lane, each from its own stream against its
    // own knowledge view, then advance every occupied lane in one sweep.
    active_.clear();
    for (std::uint32_t lane = 0; lane < engine_->lane_count(); ++lane) {
      if (lanes_[lane].trial < 0) continue;
      active_.push_back(lane);
      tx_buffer_.clear();
      lanes_[lane].protocol->select_transmitters(
          engine_->round(lane) + 1, engine_->view(lane), lanes_[lane].rng,
          tx_buffer_);
      engine_->add_transmitters(lane, tx_buffer_);
      lanes_[lane].partial.transmissions += tx_buffer_.size();
    }
    engine_->step(active_);
    for (std::uint32_t lane : active_) {
      const BatchEngine::LaneOutcome& o = engine_->outcome(lane);
      ++lanes_[lane].partial.rounds;
      lanes_[lane].partial.collisions += o.collisions;
    }
  }
  engine_.reset();
  return results;
}

}  // namespace radio
