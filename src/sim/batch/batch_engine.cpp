#include "sim/batch/batch_engine.hpp"

#include "util/assert.hpp"

namespace radio {

namespace {
/// Lanes per step are bounded so lane masks stay a handful of words; the
/// scheduler's memory gate (batch_lanes_for) clamps far earlier in practice.
constexpr std::uint32_t kMaxLanes = 4096;
}  // namespace

BatchEngine::BatchEngine(const Graph& g, std::uint32_t lanes)
    : graph_(&g),
      lane_count_(lanes),
      stride_(words_for_bits(lanes)),
      tx_flag_(g.num_nodes(), 0),
      touched_flag_(g.num_nodes(), 0) {
  RADIO_EXPECTS(lanes >= 1 && lanes <= kMaxLanes);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  informed_p_.assign(n * stride_, 0);
  once_.assign(n * stride_, 0);
  twice_.assign(n * stride_, 0);
  tx_.assign(n * stride_, 0);
  informed_mirror_.resize(lanes);
  for (auto& m : informed_mirror_) m = Bitset(g.num_nodes());
  informed_round_.assign(lanes, std::vector<std::uint32_t>(n, kUnreachable));
  informed_count_.assign(lanes, 0);
  round_.assign(lanes, 0);
  outcome_.assign(lanes, LaneOutcome{});
  tx_count_.assign(lanes, 0);
  all_tx_informed_.assign(stride_, ~std::uint64_t{0});
}

void BatchEngine::open_lane(std::uint32_t lane, NodeId source) {
  RADIO_EXPECTS(lane < lane_count_);
  RADIO_EXPECTS(source < graph_->num_nodes());
  RADIO_EXPECTS(tx_count_[lane] == 0);  // no transmitters pending
  const std::uint64_t mask = std::uint64_t{1} << (lane & 63);
  const std::size_t word = lane >> 6;
  // Clear the lane's previous informed bits via its mirror (touches only the
  // nodes that were informed, not all n·stride words).
  Bitset& mirror = informed_mirror_[lane];
  std::vector<std::uint32_t>& rounds = informed_round_[lane];
  if (informed_count_[lane] > 0) {
    const std::span<const std::uint64_t> words = mirror.words();
    for (std::size_t wi = 0; wi < words.size(); ++wi)
      for_each_set_bit(words[wi], wi * 64, [&](std::size_t v) {
        informed_p_[v * stride_ + word] &= ~mask;
        rounds[v] = kUnreachable;
      });
    mirror.clear_all();
  }
  informed_p_[static_cast<std::size_t>(source) * stride_ + word] |= mask;
  mirror.set(source);
  rounds[source] = 0;
  informed_count_[lane] = 1;
  round_[lane] = 0;
  outcome_[lane] = LaneOutcome{};
}

void BatchEngine::add_transmitter(std::uint32_t lane, NodeId v) {
  add_transmitters(lane, std::span<const NodeId>(&v, 1));
}

void BatchEngine::add_transmitters(std::uint32_t lane,
                                   std::span<const NodeId> vs) {
  RADIO_EXPECTS(lane < lane_count_);
  const std::uint64_t mask = std::uint64_t{1} << (lane & 63);
  const std::size_t word = lane >> 6;
  const std::size_t stride = stride_;
  const Bitset& mirror = informed_mirror_[lane];
  std::uint64_t all_informed = all_tx_informed_[word];
  for (const NodeId v : vs) {
    RADIO_EXPECTS(v < graph_->num_nodes());
    std::uint64_t& txw = tx_[static_cast<std::size_t>(v) * stride + word];
    RADIO_EXPECTS((txw & mask) == 0);  // duplicates are caller bugs
    txw |= mask;
    if (!tx_flag_[v]) {
      tx_flag_[v] = 1;
      tx_nodes_.push_back(v);
    }
    // An uninformed transmitter jams but can deliver nothing: drop the lane
    // from the fast "every sender is informed" classification mask.
    if (!mirror.test(v)) all_informed &= ~mask;
  }
  all_tx_informed_[word] = all_informed;
  tx_count_[lane] += static_cast<std::uint32_t>(vs.size());
}

void BatchEngine::step(std::span<const std::uint32_t> active) {
  for (std::uint32_t lane : active) {
    RADIO_EXPECTS(lane < lane_count_);
    outcome_[lane] = LaneOutcome{tx_count_[lane], 0, 0, 0};
    ++round_[lane];
  }

  // Fold every transmitter's neighborhood into the hit counters; one pass
  // over the shared adjacency serves all lanes at once. stride 1 — up to 64
  // lanes, by far the common case — gets a branch-free single-word inner
  // loop; the generic loop handles wider lane masks.
  if (stride_ == 1) {
    for (NodeId u : tx_nodes_) {
      const std::uint64_t txu = tx_[u];
      for (NodeId w : graph_->neighbors(u)) {
        if (!touched_flag_[w]) {
          touched_flag_[w] = 1;
          touched_.push_back(w);
        }
        const std::uint64_t o = once_[w];
        twice_[w] |= o & txu;
        once_[w] = o | txu;
      }
    }
  } else {
    for (NodeId u : tx_nodes_) {
      const std::uint64_t* txu = plane(tx_, u);
      for (NodeId w : graph_->neighbors(u)) {
        if (!touched_flag_[w]) {
          touched_flag_[w] = 1;
          touched_.push_back(w);
        }
        std::uint64_t* oncew = plane(once_, w);
        std::uint64_t* twicew = plane(twice_, w);
        for (std::size_t k = 0; k < stride_; ++k) {
          twicew[k] |= oncew[k] & txu[k];
          oncew[k] |= txu[k];
        }
      }
    }
  }

  // Classify every hit listener, lane-word by lane-word.
  for (NodeId w : touched_) {
    const std::uint64_t* oncew = plane(once_, w);
    const std::uint64_t* twicew = plane(twice_, w);
    const std::uint64_t* txw = plane(tx_, w);
    std::uint64_t* infw = plane(informed_p_, w);
    for (std::size_t k = 0; k < stride_; ++k) {
      const std::uint64_t listeners = ~txw[k];  // transmitters never receive
      const std::uint64_t colliding = twicew[k] & listeners;
      if (colliding != 0)
        for_each_set_bit(colliding, k * 64, [&](std::size_t lane) {
          ++outcome_[lane].collisions;
        });
      const std::uint64_t unique = oncew[k] & ~twicew[k] & listeners;
      if (unique == 0) continue;
      // Lanes whose transmitters are all informed deliver without resolving
      // the sender; the rest need the sender's informed bit.
      std::uint64_t message = unique & all_tx_informed_[k];
      std::uint64_t resolve = unique & ~all_tx_informed_[k];
      if (resolve != 0) {
        for (NodeId u : graph_->neighbors(w)) {
          const std::uint64_t hit = resolve & plane(tx_, u)[k];
          if (hit == 0) continue;
          // u is THE transmitting neighbor in the lanes of `hit`; informed
          // bits of a transmitter cannot change mid-step, so this reads the
          // pre-round value.
          message |= hit & plane(informed_p_, u)[k];
          resolve &= ~hit;
          if (resolve == 0) break;
        }
      }
      if (message == 0) continue;
      const std::uint64_t redundant = message & infw[k];
      if (redundant != 0)
        for_each_set_bit(redundant, k * 64, [&](std::size_t lane) {
          ++outcome_[lane].redundant;
        });
      const std::uint64_t fresh = message & ~infw[k];
      if (fresh != 0) {
        infw[k] |= fresh;
        for_each_set_bit(fresh, k * 64, [&](std::size_t lane) {
          informed_mirror_[lane].set(w);
          informed_round_[lane][w] = round_[lane];
          ++informed_count_[lane];
          ++outcome_[lane].newly_informed;
        });
      }
    }
  }

  // Reset scratch via the touched lists (never O(n·stride)).
  for (NodeId w : touched_) {
    std::uint64_t* oncew = plane(once_, w);
    std::uint64_t* twicew = plane(twice_, w);
    for (std::size_t k = 0; k < stride_; ++k) {
      oncew[k] = 0;
      twicew[k] = 0;
    }
    touched_flag_[w] = 0;
  }
  touched_.clear();
  for (NodeId u : tx_nodes_) {
    std::uint64_t* txu = plane(tx_, u);
    for (std::size_t k = 0; k < stride_; ++k) txu[k] = 0;
    tx_flag_[u] = 0;
  }
  tx_nodes_.clear();
  for (std::uint32_t lane : active) tx_count_[lane] = 0;
  for (std::size_t k = 0; k < stride_; ++k)
    all_tx_informed_[k] = ~std::uint64_t{0};
}

void BatchEngine::compact(std::span<const std::uint32_t> old_lane_of_new) {
  RADIO_EXPECTS(tx_nodes_.empty() && touched_.empty());
  const auto new_count = static_cast<std::uint32_t>(old_lane_of_new.size());
  RADIO_EXPECTS(new_count >= 1 && new_count <= lane_count_);
  const std::size_t new_stride = words_for_bits(new_count);
  const auto n = static_cast<std::size_t>(graph_->num_nodes());

  // Regather the informed plane under the new lane numbering. The old plane
  // is read through each surviving lane's mirror, so cost is Σ informed, not
  // n·lanes.
  std::vector<std::uint64_t> informed_new(n * new_stride, 0);
  std::vector<Bitset> mirror_new(new_count);
  std::vector<std::vector<std::uint32_t>> rounds_new(new_count);
  std::vector<std::size_t> count_new(new_count);
  std::vector<std::uint32_t> round_new(new_count);
  std::vector<LaneOutcome> outcome_new(new_count);
  for (std::uint32_t i = 0; i < new_count; ++i) {
    const std::uint32_t old = old_lane_of_new[i];
    RADIO_EXPECTS(old < lane_count_);
    RADIO_EXPECTS(i == 0 || old > old_lane_of_new[i - 1]);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::size_t word = i >> 6;
    const std::span<const std::uint64_t> words = informed_mirror_[old].words();
    for (std::size_t wi = 0; wi < words.size(); ++wi)
      for_each_set_bit(words[wi], wi * 64, [&](std::size_t v) {
        informed_new[v * new_stride + word] |= mask;
      });
    mirror_new[i] = std::move(informed_mirror_[old]);
    rounds_new[i] = std::move(informed_round_[old]);
    count_new[i] = informed_count_[old];
    round_new[i] = round_[old];
    outcome_new[i] = outcome_[old];
  }

  lane_count_ = new_count;
  stride_ = new_stride;
  informed_p_ = std::move(informed_new);
  once_.assign(n * stride_, 0);
  twice_.assign(n * stride_, 0);
  tx_.assign(n * stride_, 0);
  informed_mirror_ = std::move(mirror_new);
  informed_round_ = std::move(rounds_new);
  informed_count_ = std::move(count_new);
  round_ = std::move(round_new);
  outcome_ = std::move(outcome_new);
  tx_count_.assign(new_count, 0);
  all_tx_informed_.assign(stride_, ~std::uint64_t{0});
}

}  // namespace radio
