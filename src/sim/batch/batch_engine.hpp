// Instance-parallel radio channel: B broadcast instances ("lanes") on ONE
// shared graph, advanced together by word-parallel sweeps.
//
// Layout. State is lane-sliced SoA: for every node v the engine keeps a
// ⌈B/64⌉-word lane mask per plane (informed / transmitting / hit-once /
// hit-twice), stored contiguously per node, node-major. Bit l of node v's
// word says what lane l's instance knows about v. One pass over the shared
// adjacency therefore advances ALL lanes: folding transmitter u's neighbor w
// costs ⌈B/64⌉ word ops and serves every lane in which u transmits — the
// per-round work is Σ over the UNION of the lanes' transmitter sets, not the
// sum, which is where the batch speedup comes from (protocols with
// overlapping transmitter sets, e.g. flood-like phases, amortize best).
//
// Semantics per lane are EXACTLY RadioEngine's (sim/engine.hpp): a listener
// receives iff precisely one neighbor transmits, ≥ 2 jam, transmitters never
// receive, and an uninformed unique transmitter still jams delivery of
// nothing. The differential suite (tests/sim/test_batch_engine.cpp,
// tests/property/test_batch_equivalence.cpp) pins round-by-round equality
// against RadioEngine for every lane.
//
// In-round mutation safety: informed bits are set the moment a delivery is
// classified. This cannot race with the unique-sender resolution of another
// listener because a transmitter can never receive in its own lane — the
// informed bits read during resolution are masked to lanes where the scanned
// node transmits, and those bits are frozen for the round.
//
// The engine knows nothing about protocols, RNG streams or trial queues;
// BatchScheduler (batch_scheduler.hpp) owns that. No wall clock, no
// iostream: this file is part of the simulation kernel (radio-lint enforces
// both).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/session_view.hpp"
#include "util/bitset.hpp"

namespace radio {

class BatchEngine {
 public:
  /// What one lane experienced in the round just stepped.
  struct LaneOutcome {
    std::uint32_t transmitters = 0;    ///< nodes that transmitted in the lane
    std::uint32_t newly_informed = 0;  ///< uninformed listeners that received
    std::uint32_t collisions = 0;      ///< listeners with >= 2 tx neighbors
    std::uint32_t redundant = 0;       ///< informed listeners that heard again
  };

  /// `lanes` in [1, 4096]; the graph must outlive the engine.
  BatchEngine(const Graph& g, std::uint32_t lanes);

  const Graph& graph() const noexcept { return *graph_; }
  std::uint32_t lane_count() const noexcept { return lane_count_; }

  /// Words per lane-mask slice (⌈lane_count/64⌉) — shrinks on compact().
  std::size_t lane_words() const noexcept { return stride_; }

  /// (Re)initializes a lane: informed = {source} at round 0. Clears any
  /// previous instance state the lane held.
  void open_lane(std::uint32_t lane, NodeId source);

  /// Rounds stepped since the lane was opened.
  std::uint32_t round(std::uint32_t lane) const noexcept {
    return round_[lane];
  }

  bool informed(std::uint32_t lane, NodeId v) const noexcept {
    return informed_mirror_[lane].test(v);
  }
  std::size_t informed_count(std::uint32_t lane) const noexcept {
    return informed_count_[lane];
  }
  bool complete(std::uint32_t lane) const noexcept {
    return informed_count_[lane] == graph_->num_nodes();
  }

  /// The protocol-facing knowledge surface of one lane (valid until the next
  /// step()/open_lane()/compact() on that lane).
  SessionView view(std::uint32_t lane) const noexcept {
    return SessionView(*graph_, informed_mirror_[lane], informed_round_[lane],
                       informed_count_[lane]);
  }

  /// Registers v as a transmitter of `lane` for the upcoming step().
  /// Duplicate (lane, v) pairs are caller bugs, as in RadioEngine.
  void add_transmitter(std::uint32_t lane, NodeId v);

  /// Bulk form of add_transmitter: registers every node of `vs` for `lane`.
  /// One lane-mask/mirror setup amortized over the whole set — the scheduler
  /// feeds each lane's per-round transmitter list through this.
  void add_transmitters(std::uint32_t lane, std::span<const NodeId> vs);

  /// Executes one synchronous round for every lane in `active` (ascending
  /// lane ids, each open): increments their round counters, applies
  /// deliveries, and fills outcome(). Lanes outside `active` must not have
  /// registered transmitters.
  void step(std::span<const std::uint32_t> active);

  /// Valid for lanes passed to the most recent step().
  const LaneOutcome& outcome(std::uint32_t lane) const noexcept {
    return outcome_[lane];
  }

  /// Retires lane slots: lane i of the compacted engine is old lane
  /// `old_lane_of_new[i]` (strictly increasing). Shrinking the lane count
  /// shrinks lane_words(), and with it the per-word cost of every subsequent
  /// sweep — the scheduler calls this when occupancy drops. Must not be
  /// called with transmitters pending.
  void compact(std::span<const std::uint32_t> old_lane_of_new);

 private:
  std::uint64_t* plane(std::vector<std::uint64_t>& p, NodeId v) noexcept {
    return p.data() + static_cast<std::size_t>(v) * stride_;
  }
  const std::uint64_t* plane(const std::vector<std::uint64_t>& p,
                             NodeId v) const noexcept {
    return p.data() + static_cast<std::size_t>(v) * stride_;
  }

  const Graph* graph_;
  std::uint32_t lane_count_;
  std::size_t stride_;  ///< words per lane slice

  // Lane-sliced planes, node-major: node v's slice is words [v·stride,
  // (v+1)·stride). once_/twice_/tx_ are all-zero between rounds (reset via
  // touched lists, never O(n·stride)).
  std::vector<std::uint64_t> informed_p_;
  std::vector<std::uint64_t> once_;
  std::vector<std::uint64_t> twice_;
  std::vector<std::uint64_t> tx_;

  // Per-lane untransposed mirrors backing SessionView: protocols read
  // informed(v)/informed_round(v) per lane, which the transposed planes
  // cannot serve without bit gathers.
  std::vector<Bitset> informed_mirror_;
  std::vector<std::vector<std::uint32_t>> informed_round_;
  std::vector<std::size_t> informed_count_;
  std::vector<std::uint32_t> round_;
  std::vector<LaneOutcome> outcome_;

  // Round scratch.
  std::vector<NodeId> tx_nodes_;        ///< union of this round's transmitters
  std::vector<std::uint8_t> tx_flag_;   ///< node in tx_nodes_?
  std::vector<std::uint32_t> tx_count_; ///< per lane
  /// Bit l set while every transmitter registered by lane l is informed —
  /// then a unique sender in lane l delivers without resolving WHO sent.
  std::vector<std::uint64_t> all_tx_informed_;
  std::vector<NodeId> touched_;         ///< listeners hit this round
  std::vector<std::uint8_t> touched_flag_;
};

}  // namespace radio
