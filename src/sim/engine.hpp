// The radio channel itself: one synchronous round of the model in §1.1.
//
// Semantics (exactly the paper's): every node either transmits or listens.
// A listening node w RECEIVES iff precisely one of its neighbors transmits;
// if two or more transmit, a collision destroys the round for w; a
// transmitting node never receives. A received transmission delivers the
// broadcast message only if the transmitter actually holds it — uninformed
// transmitters still jam the channel (needed verbatim by Theorem 6's relaxed
// adversary, which lets arbitrary sets transmit).
//
// Execution paths. The engine owns two exact implementations of the round:
//
//   * SPARSE — per-transmitter adjacency-list sweep over scratch arrays
//     sized to the graph: O(Σ deg(t) over transmitters t) with no per-round
//     allocation. Optimal when transmitter neighborhoods are small.
//   * DENSE — the word-parallel bitmap kernel (sim/channel_kernel.hpp):
//     (|T| + O(1))·⌈n/64⌉ 64-bit word operations per round against the
//     graph's lazily built adjacency bitmap. Optimal in the dense regime
//     (§3.1 / E8), where Σ deg(t) approaches |T|·n.
//
// A per-round cost model (dense_round_pays) picks the cheaper path; tests
// and benches can pin one with force_path(). DETERMINISM CONTRACT: both
// paths produce bit-identical Outcome counters, identical delivered sets
// (appended in ascending node id order) and identical observation buffers,
// so path choice — like thread count — can never change simulation results;
// same seed ⇒ same results. The differential property suite
// (tests/property/test_dense_kernel.cpp) enforces this.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/channel_kernel.hpp"
#include "util/bitset.hpp"

namespace radio {

/// What a node experienced on the channel in one round. The paper's model
/// gives listeners no collision detection — a collision is indistinguishable
/// from silence — so kCollision is only distinguishable from kSilence when
/// the engine runs with observation recording enabled (the collision-
/// detection MODEL EXTENSION used by AdaptiveBackoffProtocol; see
/// protocols/adaptive_backoff.hpp).
enum class ChannelObservation : std::uint8_t {
  kSilence = 0,      ///< listened, no transmitting neighbor
  kMessage = 1,      ///< listened, exactly one transmitting neighbor
  kCollision = 2,    ///< listened, two or more transmitting neighbors
  kTransmitting = 3, ///< was transmitting (hears nothing by definition)
};

class RadioEngine {
 public:
  explicit RadioEngine(const Graph& g);

  /// Enables per-node channel observations (collision-detection extension).
  /// Off by default: the base model must not pay for it.
  void record_observations(bool enabled);

  /// Valid after a step() with recording enabled: one entry per node.
  std::span<const ChannelObservation> last_observations() const noexcept {
    return observations_;
  }

  /// Pins the execution path (differential tests, benches). Both paths are
  /// exact, so this can never change results — only the round's cost.
  void force_path(RoundPath path) noexcept {
    path_mode_ = path == RoundPath::kDense ? PathMode::kForceDense
                                           : PathMode::kForceSparse;
  }

  /// Restores cost-model path selection (the default).
  void auto_path() noexcept { path_mode_ = PathMode::kAuto; }

  /// Which path the most recent step() executed.
  RoundPath last_path() const noexcept { return last_path_; }

  /// Executes one round. `transmitters` must be distinct node ids.
  /// `informed` is the pre-round informed set. Appends every listener that
  /// successfully receives THE MESSAGE this round to `delivered` (uninformed
  /// listeners only — re-deliveries are counted, not appended), in ascending
  /// node id order on both paths.
  struct Outcome {
    std::uint32_t collisions = 0;  ///< listeners jammed by >= 2 transmitters
    std::uint32_t redundant = 0;   ///< informed listeners that heard it again
  };
  Outcome step(std::span<const NodeId> transmitters, const Bitset& informed,
               std::vector<NodeId>& delivered);

  const Graph& graph() const noexcept { return *graph_; }

 private:
  enum class PathMode : std::uint8_t { kAuto, kForceSparse, kForceDense };

  Outcome step_sparse(std::span<const NodeId> transmitters,
                      const Bitset& informed, std::vector<NodeId>& delivered);
  Outcome step_dense(std::span<const NodeId> transmitters,
                     const Bitset& informed, std::vector<NodeId>& delivered);

  void observe(NodeId v, ChannelObservation what) {
    observations_[v] = what;
    observed_.push_back(v);
  }

  const Graph* graph_;
  std::vector<std::uint8_t> hits_;     ///< per node: 0, 1, or 2 (saturating)
  std::vector<NodeId> unique_sender_;  ///< valid when hits_ == 1
  Bitset transmitting_;
  std::vector<NodeId> touched_;        ///< nodes whose scratch needs reset
  DenseRoundAccumulator dense_;        ///< dense-path accumulators (lazy)
  PathMode path_mode_ = PathMode::kAuto;
  RoundPath last_path_ = RoundPath::kSparse;
  bool record_observations_ = false;
  std::vector<ChannelObservation> observations_;
  std::vector<NodeId> observed_;       ///< nodes whose observation needs reset
};

}  // namespace radio
