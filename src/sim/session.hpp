// Broadcast session state: which nodes are informed, when each learned the
// message, and per-round statistics. One session == one broadcast attempt on
// one graph instance from one source.
//
// Optional extras (both off by default, costing nothing when unused):
//   * fault injection (sim/faults.hpp): crashed nodes are silently dropped
//     from every transmitter set and can never receive; lossy links drop
//     deliveries at the configured rate; completion means "all SURVIVING
//     nodes informed";
//   * channel observations: per-node silence/message/collision feedback for
//     the collision-detection model extension.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/round_stats.hpp"
#include "util/bitset.hpp"

namespace radio {

class BroadcastSession {
 public:
  /// Starts a broadcast of one message held by `source` at round 0.
  /// The session keeps a reference to `g`: the graph must outlive it
  /// (do not pass a temporary).
  BroadcastSession(const Graph& g, NodeId source);

  /// Fault-injected session. The source must not be crashed.
  BroadcastSession(const Graph& g, NodeId source, SessionFaults faults);

  /// Multi-source session: the SAME message is injected at several nodes at
  /// round 0 (k emergency sirens announcing one alert). `sources` must be
  /// non-empty, distinct, and free of crashed nodes; source() reports the
  /// first one.
  BroadcastSession(const Graph& g, std::span<const NodeId> sources,
                   SessionFaults faults = {});

  const Graph& graph() const noexcept { return engine_.graph(); }
  NodeId source() const noexcept { return source_; }

  bool informed(NodeId v) const noexcept { return informed_.test(v); }

  /// Round in which v became informed; kUnreachable if still uninformed.
  /// The source is informed at round 0.
  std::uint32_t informed_round(NodeId v) const noexcept {
    return informed_round_[v];
  }

  /// The whole informed-round array (SessionView's backing span).
  std::span<const std::uint32_t> informed_rounds() const noexcept {
    return informed_round_;
  }

  std::size_t informed_count() const noexcept { return informed_count_; }

  /// Number of nodes that can still participate (n minus crashes).
  std::size_t alive_count() const noexcept { return alive_count_; }

  bool crashed(NodeId v) const noexcept {
    return faults_.crashed.size() > 0 && faults_.crashed.test(v);
  }

  /// Complete == every surviving node informed.
  bool complete() const noexcept { return informed_count_ == alive_count_; }

  /// Rounds executed so far.
  std::uint32_t current_round() const noexcept {
    return static_cast<std::uint32_t>(history_.size());
  }

  /// Enables per-node channel observations (collision-detection extension).
  void enable_observations() { engine_.record_observations(true); }

  /// Pins the engine's execution path (tests/benches only). Both paths are
  /// exact — see the determinism contract in sim/engine.hpp.
  void force_path(RoundPath path) noexcept { engine_.force_path(path); }
  void auto_path() noexcept { engine_.auto_path(); }

  /// Valid after a step() when observations are enabled.
  std::span<const ChannelObservation> last_observations() const noexcept {
    return engine_.last_observations();
  }

  /// Executes one round with the given transmitter set and records stats.
  /// Crashed transmitters are dropped silently (their radio is off).
  const RoundStats& step(std::span<const NodeId> transmitters);

  /// All informed node ids, ascending.
  std::vector<NodeId> informed_nodes() const;

  /// All surviving uninformed node ids, ascending.
  std::vector<NodeId> uninformed_nodes() const;

  const Bitset& informed_set() const noexcept { return informed_; }
  const std::vector<RoundStats>& history() const noexcept { return history_; }

  /// Total collision events over the whole session.
  std::uint64_t total_collisions() const noexcept;

  /// Deliveries dropped by the loss fault model so far.
  std::uint64_t lost_deliveries() const noexcept { return lost_deliveries_; }

 private:
  RadioEngine engine_;
  NodeId source_;
  SessionFaults faults_;
  Rng loss_rng_;
  Bitset informed_;
  std::vector<std::uint32_t> informed_round_;
  std::size_t informed_count_ = 0;
  std::size_t alive_count_ = 0;
  std::uint64_t lost_deliveries_ = 0;
  std::vector<RoundStats> history_;
  std::vector<NodeId> delivery_buffer_;
  std::vector<NodeId> filtered_transmitters_;
};

}  // namespace radio
