// Schedule post-processing.
//
// The Theorem-5 builder derandomizes by resampling, but a frozen schedule
// can still contain rounds that deliver nothing on the graph it was built
// for (e.g. trailing parity rounds after the pipeline stagnated). Removing a
// zero-yield round never changes the informed set at any later point, so
// pruning is sound; it tightens the artifact a deployment actually ships.
#pragma once

#include "graph/graph.hpp"
#include "sim/schedule.hpp"

namespace radio {

struct PruneReport {
  Schedule schedule;            ///< the pruned schedule
  std::uint32_t removed_rounds = 0;
  std::uint64_t removed_transmissions = 0;
};

/// Simulates `schedule` from `source` and drops every round that informs no
/// new node. Iterates to a fixed point (dropping a round can make a later
/// duplicate round unproductive too). The pruned schedule provably informs
/// exactly the same final set.
PruneReport prune_schedule(const Schedule& schedule, const Graph& graph,
                           NodeId source);

/// True iff both schedules inform the same final node set from `source`
/// (used to validate pruning and serialization round-trips).
bool schedules_equivalent(const Schedule& a, const Schedule& b,
                          const Graph& graph, NodeId source);

}  // namespace radio
