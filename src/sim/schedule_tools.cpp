#include "sim/schedule_tools.hpp"

#include "sim/session.hpp"
#include "util/assert.hpp"

namespace radio {

PruneReport prune_schedule(const Schedule& schedule, const Graph& graph,
                           NodeId source) {
  RADIO_EXPECTS(source < graph.num_nodes());
  Schedule current = schedule;
  if (current.phase_of.size() != current.rounds.size())
    current.phase_of.resize(current.rounds.size());

  PruneReport report;
  bool changed = true;
  while (changed) {
    changed = false;
    BroadcastSession session(graph, source);
    Schedule next;
    for (std::size_t i = 0; i < current.rounds.size(); ++i) {
      const RoundStats& stats = session.step(current.rounds[i]);
      if (stats.newly_informed == 0) {
        ++report.removed_rounds;
        report.removed_transmissions += current.rounds[i].size();
        changed = true;
      } else {
        next.rounds.push_back(std::move(current.rounds[i]));
        next.phase_of.push_back(std::move(current.phase_of[i]));
      }
    }
    current = std::move(next);
  }
  report.schedule = std::move(current);
  return report;
}

bool schedules_equivalent(const Schedule& a, const Schedule& b,
                          const Graph& graph, NodeId source) {
  RADIO_EXPECTS(source < graph.num_nodes());
  BroadcastSession sa(graph, source);
  for (const auto& round : a.rounds) sa.step(round);
  BroadcastSession sb(graph, source);
  for (const auto& round : b.rounds) sb.step(round);
  return sa.informed_set() == sb.informed_set();
}

}  // namespace radio
