#include "sim/schedule_io.hpp"

#include <fstream>
#include <sstream>

namespace radio {

std::string schedule_to_text(const Schedule& schedule) {
  std::ostringstream out;
  out << "radio-schedule v1\n";
  out << "rounds " << schedule.rounds.size() << "\n";
  for (std::size_t i = 0; i < schedule.rounds.size(); ++i) {
    const std::string phase =
        i < schedule.phase_of.size() && !schedule.phase_of[i].empty()
            ? schedule.phase_of[i]
            : std::string("-");
    out << "round " << i << " " << phase << " " << schedule.rounds[i].size();
    for (NodeId v : schedule.rounds[i]) out << " " << v;
    out << "\n";
  }
  return out.str();
}

std::optional<Schedule> schedule_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string word;
  if (!(in >> word) || word != "radio-schedule") return std::nullopt;
  if (!(in >> word) || word != "v1") return std::nullopt;
  std::size_t rounds = 0;
  if (!(in >> word) || word != "rounds" || !(in >> rounds)) return std::nullopt;

  Schedule schedule;
  schedule.rounds.resize(rounds);
  schedule.phase_of.resize(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    std::size_t index = 0, count = 0;
    std::string phase;
    if (!(in >> word) || word != "round") return std::nullopt;
    if (!(in >> index) || index != i) return std::nullopt;
    if (!(in >> phase)) return std::nullopt;
    if (!(in >> count)) return std::nullopt;
    schedule.phase_of[i] = phase == "-" ? std::string{} : phase;
    schedule.rounds[i].resize(count);
    for (std::size_t k = 0; k < count; ++k)
      if (!(in >> schedule.rounds[i][k])) return std::nullopt;
  }
  return schedule;
}

bool save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << schedule_to_text(schedule);
  return static_cast<bool>(file);
}

std::optional<Schedule> load_schedule(const std::string& path) {
  std::ifstream file(path);
  if (!file) return std::nullopt;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return schedule_from_text(buffer.str());
}

}  // namespace radio
