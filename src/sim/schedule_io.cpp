#include "sim/schedule_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string_view>

#include "util/parse.hpp"

namespace radio {
namespace {

/// Whitespace-token scanner that knows how much input is left — the header
/// bounds checks below compare claimed counts against `remaining()` before
/// any allocation happens.
class TokenReader {
 public:
  explicit TokenReader(const std::string& text) : text_(text) {}

  std::optional<std::string_view> next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ >= text_.size()) return std::nullopt;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return std::string_view(text_).substr(start, pos_ - start);
  }

  std::size_t remaining() const noexcept { return text_.size() - pos_; }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

std::optional<Schedule> reject(std::string* error, const std::string& what) {
  if (error) *error = "schedule: " + what;
  return std::nullopt;
}

}  // namespace

std::string schedule_to_text(const Schedule& schedule) {
  std::ostringstream out;
  out << "radio-schedule v1\n";
  out << "rounds " << schedule.rounds.size() << "\n";
  for (std::size_t i = 0; i < schedule.rounds.size(); ++i) {
    const std::string phase =
        i < schedule.phase_of.size() && !schedule.phase_of[i].empty()
            ? schedule.phase_of[i]
            : std::string("-");
    out << "round " << i << " " << phase << " " << schedule.rounds[i].size();
    for (NodeId v : schedule.rounds[i]) out << " " << v;
    out << "\n";
  }
  return out.str();
}

std::optional<Schedule> schedule_from_text(const std::string& text,
                                           std::string* error,
                                           NodeId max_nodes) {
  TokenReader in(text);
  auto word = in.next();
  if (!word || *word != "radio-schedule")
    return reject(error, "expected magic 'radio-schedule', got '" +
                             std::string(word.value_or("<end of input>")) +
                             "'");
  word = in.next();
  if (!word || *word != "v1")
    return reject(error, "unsupported version '" +
                             std::string(word.value_or("<end of input>")) +
                             "' (expected v1)");
  word = in.next();
  if (!word || *word != "rounds")
    return reject(error, "expected 'rounds <R>' header");
  word = in.next();
  if (!word) return reject(error, "truncated after 'rounds' keyword");
  const auto rounds = parse_u64(*word, "rounds header");
  if (!rounds) return reject(error, rounds.error());
  // Each round line is at least "round <i> - 0" — 11 bytes. Comparing the
  // claimed count against the bytes actually left makes a corrupt header a
  // diagnostic instead of a multi-gigabyte resize.
  if (*rounds > in.remaining())
    return reject(error, "rounds header claims " + std::string(*word) +
                             " rounds but only " +
                             std::to_string(in.remaining()) +
                             " bytes of input remain");

  Schedule schedule;
  schedule.rounds.resize(static_cast<std::size_t>(*rounds));
  schedule.phase_of.resize(static_cast<std::size_t>(*rounds));
  for (std::size_t i = 0; i < *rounds; ++i) {
    const std::string where = "round " + std::to_string(i);
    word = in.next();
    if (!word || *word != "round")
      return reject(error, where + ": expected 'round' keyword, got '" +
                               std::string(word.value_or("<end of input>")) +
                               "'");
    word = in.next();
    if (!word) return reject(error, where + ": truncated before index");
    const auto index = parse_u64(*word, where + " index");
    if (!index) return reject(error, index.error());
    if (*index != i)
      return reject(error, where + ": index " + std::string(*word) +
                               " out of order (expected " + std::to_string(i) +
                               ")");
    word = in.next();
    if (!word) return reject(error, where + ": truncated before phase label");
    schedule.phase_of[i] = *word == "-" ? std::string{} : std::string(*word);
    word = in.next();
    if (!word)
      return reject(error, where + ": truncated before transmitter count");
    const auto count = parse_u64(*word, where + " transmitter count");
    if (!count) return reject(error, count.error());
    // k transmitter ids need at least k digits plus k-1 separators.
    if (*count > 0 && 2 * *count - 1 > in.remaining())
      return reject(error, where + ": transmitter count " +
                               std::string(*word) + " exceeds the " +
                               std::to_string(in.remaining()) +
                               " bytes of input remaining");
    schedule.rounds[i].resize(static_cast<std::size_t>(*count));
    for (std::size_t k = 0; k < *count; ++k) {
      word = in.next();
      if (!word)
        return reject(error, where + ": truncated at transmitter " +
                                 std::to_string(k) + " of " +
                                 std::to_string(*count));
      const auto id =
          parse_u64(*word, where + " transmitter " + std::to_string(k));
      if (!id) return reject(error, id.error());
      if (max_nodes > 0 && *id >= max_nodes)
        return reject(error, where + ": transmitter id " + std::string(*word) +
                                 " out of range for n=" +
                                 std::to_string(max_nodes));
      if (*id > 0xFFFFFFFEULL)
        return reject(error, where + ": transmitter id " + std::string(*word) +
                                 " exceeds the node-id range");
      schedule.rounds[i][k] = static_cast<NodeId>(*id);
    }
  }
  if (const auto trailing = in.next())
    return reject(error, "trailing garbage after last round: '" +
                             std::string(*trailing) + "'");
  return schedule;
}

bool save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream file(path);
  if (!file) return false;
  file << schedule_to_text(schedule);
  return static_cast<bool>(file);
}

std::optional<Schedule> load_schedule(const std::string& path,
                                      std::string* error, NodeId max_nodes) {
  std::ifstream file(path);
  if (!file) {
    if (error) *error = path + ": cannot open for reading";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  auto parsed = schedule_from_text(buffer.str(), error, max_nodes);
  if (!parsed && error && !error->empty()) *error = path + ": " + *error;
  return parsed;
}

}  // namespace radio
