// Fault models for robustness experiments (E11).
//
// Two orthogonal fault classes:
//   * CRASH faults: a node's radio is off for the whole session — it never
//     transmits, never jams, never receives, and does not count toward
//     completion. Crash faults model destroyed/depleted devices and are what
//     breaks a precomputed Theorem-5 schedule (its transmitter sets silently
//     lose members) while the Theorem-7 protocol keeps adapting.
//   * LOSS faults: each otherwise-successful reception is independently
//     dropped with probability `loss` (fading, interference bursts). Loss
//     slows every protocol by a 1/(1-loss) factor but breaks none.
#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace radio {

struct SessionFaults {
  Bitset crashed;          ///< empty, or one bit per node
  double loss = 0.0;       ///< per-delivery drop probability in [0, 1)
  std::uint64_t seed = 0;  ///< randomness for loss draws

  bool any() const noexcept { return crashed.size() > 0 || loss > 0.0; }
};

/// Crashes ~`fraction` of the nodes uniformly at random, never the protected
/// node (usually the broadcast source). Requires fraction in [0, 1).
SessionFaults make_crash_faults(NodeId n, double fraction, NodeId protect,
                                Rng& rng);

/// Pure loss plan (no crashes).
SessionFaults make_loss_faults(double loss, std::uint64_t seed);

}  // namespace radio
