#include "sim/engine.hpp"

#include "util/assert.hpp"

namespace radio {

RadioEngine::RadioEngine(const Graph& g)
    : graph_(&g),
      hits_(g.num_nodes(), 0),
      unique_sender_(g.num_nodes(), kInvalidNode),
      transmitting_(g.num_nodes()) {}

void RadioEngine::record_observations(bool enabled) {
  record_observations_ = enabled;
  if (enabled && observations_.size() != graph_->num_nodes())
    observations_.assign(graph_->num_nodes(), ChannelObservation::kSilence);
}

RadioEngine::Outcome RadioEngine::step(std::span<const NodeId> transmitters,
                                       const Bitset& informed,
                                       std::vector<NodeId>& delivered) {
  RADIO_EXPECTS(informed.size() == graph_->num_nodes());
  Outcome outcome;

  // Reset last round's observations before computing this round's (only the
  // entries that were written — never O(n)).
  if (record_observations_) {
    for (NodeId v : observed_) observations_[v] = ChannelObservation::kSilence;
    observed_.clear();
  }

  for (NodeId t : transmitters) {
    RADIO_EXPECTS(t < graph_->num_nodes());
    RADIO_EXPECTS(!transmitting_.test(t));  // duplicates are caller bugs
    transmitting_.set(t);
  }

  for (NodeId t : transmitters) {
    for (NodeId w : graph_->neighbors(t)) {
      if (hits_[w] == 0) {
        hits_[w] = 1;
        unique_sender_[w] = t;
        touched_.push_back(w);
      } else if (hits_[w] == 1) {
        hits_[w] = 2;  // saturate: >= 2 means collision regardless of count
      }
    }
  }

  for (NodeId w : touched_) {
    if (transmitting_.test(w)) continue;  // transmitters never receive
    if (hits_[w] >= 2) {
      ++outcome.collisions;
      if (record_observations_) {
        observations_[w] = ChannelObservation::kCollision;
        observed_.push_back(w);
      }
    } else {
      // Exactly one transmitting neighbor: reception succeeds. The message
      // is delivered only if that neighbor holds it.
      const NodeId sender = unique_sender_[w];
      if (record_observations_) {
        observations_[w] = ChannelObservation::kMessage;
        observed_.push_back(w);
      }
      if (informed.test(sender)) {
        if (informed.test(w)) {
          ++outcome.redundant;
        } else {
          delivered.push_back(w);
        }
      }
    }
  }

  if (record_observations_) {
    for (NodeId t : transmitters) {
      observations_[t] = ChannelObservation::kTransmitting;
      observed_.push_back(t);
    }
  }

  // Reset scratch via the touched lists (never O(n)).
  for (NodeId w : touched_) {
    hits_[w] = 0;
    unique_sender_[w] = kInvalidNode;
  }
  touched_.clear();
  for (NodeId t : transmitters) transmitting_.reset(t);

  return outcome;
}

}  // namespace radio
