#include "sim/engine.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace radio {

RadioEngine::RadioEngine(const Graph& g)
    : graph_(&g),
      hits_(g.num_nodes(), 0),
      unique_sender_(g.num_nodes(), kInvalidNode),
      transmitting_(g.num_nodes()) {}

void RadioEngine::record_observations(bool enabled) {
  record_observations_ = enabled;
  if (enabled && observations_.size() != graph_->num_nodes())
    observations_.assign(graph_->num_nodes(), ChannelObservation::kSilence);
}

RadioEngine::Outcome RadioEngine::step(std::span<const NodeId> transmitters,
                                       const Bitset& informed,
                                       std::vector<NodeId>& delivered) {
  RADIO_EXPECTS(informed.size() == graph_->num_nodes());

  // Reset last round's observations before computing this round's (only the
  // entries that were written — never O(n)).
  if (record_observations_) {
    for (NodeId v : observed_) observations_[v] = ChannelObservation::kSilence;
    observed_.clear();
  }

  for (NodeId t : transmitters) {
    RADIO_EXPECTS(t < graph_->num_nodes());
    RADIO_EXPECTS(!transmitting_.test(t));  // duplicates are caller bugs
    transmitting_.set(t);
  }

  const bool dense =
      path_mode_ == PathMode::kForceDense ||
      (path_mode_ == PathMode::kAuto &&
       dense_round_pays(graph_->num_nodes(), transmitters.size(),
                        sum_transmitter_degrees(*graph_, transmitters)));
  last_path_ = dense ? RoundPath::kDense : RoundPath::kSparse;

  const Outcome outcome = dense ? step_dense(transmitters, informed, delivered)
                                : step_sparse(transmitters, informed, delivered);

  if (record_observations_)
    for (NodeId t : transmitters) observe(t, ChannelObservation::kTransmitting);

  for (NodeId t : transmitters) transmitting_.reset(t);
  return outcome;
}

RadioEngine::Outcome RadioEngine::step_sparse(
    std::span<const NodeId> transmitters, const Bitset& informed,
    std::vector<NodeId>& delivered) {
  Outcome outcome;
  const std::size_t delivered_base = delivered.size();

  for (NodeId t : transmitters) {
    for (NodeId w : graph_->neighbors(t)) {
      if (hits_[w] == 0) {
        hits_[w] = 1;
        unique_sender_[w] = t;
        touched_.push_back(w);
      } else if (hits_[w] == 1) {
        hits_[w] = 2;  // saturate: >= 2 means collision regardless of count
      }
    }
  }

  for (NodeId w : touched_) {
    if (transmitting_.test(w)) continue;  // transmitters never receive
    if (hits_[w] >= 2) {
      ++outcome.collisions;
      if (record_observations_) observe(w, ChannelObservation::kCollision);
    } else {
      // Exactly one transmitting neighbor: reception succeeds. The message
      // is delivered only if that neighbor holds it.
      const NodeId sender = unique_sender_[w];
      if (record_observations_) observe(w, ChannelObservation::kMessage);
      if (informed.test(sender)) {
        if (informed.test(w)) {
          ++outcome.redundant;
        } else {
          delivered.push_back(w);
        }
      }
    }
  }

  // Reset scratch via the touched lists (never O(n)).
  for (NodeId w : touched_) {
    hits_[w] = 0;
    unique_sender_[w] = kInvalidNode;
  }
  touched_.clear();

  // The dense path emits deliveries in ascending id order by construction;
  // normalize here too so path choice can never leak into downstream state
  // (e.g. the loss fault model draws per delivery, in order).
  std::sort(delivered.begin() + static_cast<std::ptrdiff_t>(delivered_base),
            delivered.end());
  return outcome;
}

RadioEngine::Outcome RadioEngine::step_dense(
    std::span<const NodeId> transmitters, const Bitset& informed,
    std::vector<NodeId>& delivered) {
  Outcome outcome;
  dense_.accumulate(*graph_, transmitters);

  const std::span<const std::uint64_t> once = dense_.once_words();
  const std::span<const std::uint64_t> twice = dense_.twice_words();
  const std::span<const std::uint64_t> tx = transmitting_.words();

  for (std::size_t wi = 0; wi < once.size(); ++wi) {
    const std::uint64_t listeners_colliding = andnot(twice[wi], tx[wi]);
    const std::uint64_t listeners_unique =
        andnot(andnot(once[wi], twice[wi]), tx[wi]);
    outcome.collisions +=
        static_cast<std::uint32_t>(std::popcount(listeners_colliding));
    if (record_observations_)
      for_each_set_bit(listeners_colliding, wi * 64, [&](std::size_t w) {
        observe(static_cast<NodeId>(w), ChannelObservation::kCollision);
      });
    for_each_set_bit(listeners_unique, wi * 64, [&](std::size_t bit) {
      const auto w = static_cast<NodeId>(bit);
      if (record_observations_) observe(w, ChannelObservation::kMessage);
      const NodeId sender =
          unique_transmitting_neighbor(*graph_, transmitting_, w);
      if (informed.test(sender)) {
        if (informed.test(w)) {
          ++outcome.redundant;
        } else {
          delivered.push_back(w);  // ascending by construction of the sweep
        }
      }
    });
  }
  return outcome;
}

}  // namespace radio
