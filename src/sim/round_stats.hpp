// Per-round instrumentation emitted by the simulator.
#pragma once

#include <cstdint>

namespace radio {

struct RoundStats {
  std::uint32_t round = 0;             ///< 1-based round index
  std::uint32_t transmitters = 0;      ///< nodes that transmitted
  std::uint32_t newly_informed = 0;    ///< listeners that received the message
  std::uint32_t collisions = 0;        ///< listeners with >= 2 transmitting neighbors
  std::uint32_t wasted = 0;            ///< already-informed listeners that received again
  std::uint64_t informed_total = 0;    ///< informed nodes after the round
  bool dense_kernel = false;           ///< round ran on the word-parallel path
};

}  // namespace radio
