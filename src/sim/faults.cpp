#include "sim/faults.hpp"

#include "util/assert.hpp"

namespace radio {

SessionFaults make_crash_faults(NodeId n, double fraction, NodeId protect,
                                Rng& rng) {
  RADIO_EXPECTS(fraction >= 0.0 && fraction < 1.0);
  RADIO_EXPECTS(protect < n);
  SessionFaults faults;
  faults.crashed = Bitset(n);
  for (NodeId v = 0; v < n; ++v)
    if (v != protect && rng.bernoulli(fraction)) faults.crashed.set(v);
  return faults;
}

SessionFaults make_loss_faults(double loss, std::uint64_t seed) {
  RADIO_EXPECTS(loss >= 0.0 && loss < 1.0);
  SessionFaults faults;
  faults.loss = loss;
  faults.seed = seed;
  return faults;
}

}  // namespace radio
