#include "sim/session.hpp"

#include "sim/session_view.hpp"
#include "util/assert.hpp"

namespace radio {

SessionView::SessionView(const BroadcastSession& session) noexcept
    : SessionView(session.graph(), session.informed_set(),
                  session.informed_rounds(), session.informed_count()) {}
namespace {

NodeId first_source(std::span<const NodeId> sources) {
  RADIO_EXPECTS(!sources.empty());
  return sources.front();
}

}  // namespace

BroadcastSession::BroadcastSession(const Graph& g, NodeId source)
    : BroadcastSession(g, source, SessionFaults{}) {}

BroadcastSession::BroadcastSession(const Graph& g,
                                   std::span<const NodeId> sources,
                                   SessionFaults faults)
    : BroadcastSession(g, first_source(sources), std::move(faults)) {
  for (NodeId s : sources) {
    RADIO_EXPECTS(s < g.num_nodes());
    RADIO_EXPECTS(!crashed(s));
    if (informed_.set_if_clear(s)) {
      informed_round_[s] = 0;
      ++informed_count_;
    }
  }
}

BroadcastSession::BroadcastSession(const Graph& g, NodeId source,
                                   SessionFaults faults)
    : engine_(g),
      source_(source),
      faults_(std::move(faults)),
      loss_rng_(faults_.seed),
      informed_(g.num_nodes()),
      informed_round_(g.num_nodes(), kUnreachable) {
  RADIO_EXPECTS(source < g.num_nodes());
  RADIO_EXPECTS(faults_.crashed.size() == 0 ||
                faults_.crashed.size() == g.num_nodes());
  RADIO_EXPECTS(faults_.loss >= 0.0 && faults_.loss < 1.0);
  RADIO_EXPECTS(!crashed(source));
  informed_.set(source);
  informed_round_[source] = 0;
  informed_count_ = 1;
  alive_count_ = g.num_nodes() -
                 (faults_.crashed.size() > 0 ? faults_.crashed.count() : 0);
}

const RoundStats& BroadcastSession::step(
    std::span<const NodeId> transmitters) {
  // Crashed nodes have no radio: drop them before the channel sees anything.
  std::span<const NodeId> effective = transmitters;
  if (faults_.crashed.size() > 0) {
    filtered_transmitters_.clear();
    for (NodeId t : transmitters)
      if (!faults_.crashed.test(t)) filtered_transmitters_.push_back(t);
    effective = filtered_transmitters_;
  }

  delivery_buffer_.clear();
  const RadioEngine::Outcome outcome =
      engine_.step(effective, informed_, delivery_buffer_);

  const auto round = static_cast<std::uint32_t>(history_.size() + 1);
  std::uint32_t delivered_count = 0;
  for (NodeId w : delivery_buffer_) {
    if (crashed(w)) continue;  // dead receiver
    if (faults_.loss > 0.0 && loss_rng_.bernoulli(faults_.loss)) {
      ++lost_deliveries_;
      continue;
    }
    informed_.set(w);
    informed_round_[w] = round;
    ++delivered_count;
  }
  informed_count_ += delivered_count;

  RoundStats stats;
  stats.round = round;
  stats.transmitters = static_cast<std::uint32_t>(effective.size());
  stats.newly_informed = delivered_count;
  stats.collisions = outcome.collisions;
  stats.wasted = outcome.redundant;
  stats.informed_total = informed_count_;
  stats.dense_kernel = engine_.last_path() == RoundPath::kDense;
  history_.push_back(stats);
  return history_.back();
}

std::vector<NodeId> BroadcastSession::informed_nodes() const {
  std::vector<NodeId> out;
  out.reserve(informed_count_);
  informed_.collect(out);
  return out;
}

std::vector<NodeId> BroadcastSession::uninformed_nodes() const {
  std::vector<NodeId> out;
  out.reserve(alive_count_ - informed_count_);
  for (NodeId v = 0; v < graph().num_nodes(); ++v)
    if (!informed_.test(v) && !crashed(v)) out.push_back(v);
  return out;
}

std::uint64_t BroadcastSession::total_collisions() const noexcept {
  std::uint64_t total = 0;
  for (const RoundStats& s : history_) total += s.collisions;
  return total;
}

}  // namespace radio
