// Schedule (de)serialization: a precomputed Theorem-5 schedule is an
// operational artifact — a deployment plans it once, ships it to devices,
// and audits it later. The text format is line-oriented and diff-friendly:
//
//   radio-schedule v1
//   rounds <R>
//   round <index> <phase-label> <k> <id_1> ... <id_k>
//
// Phase labels must not contain whitespace (builder labels never do).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "sim/schedule.hpp"

namespace radio {

/// Serializes to the v1 text format.
std::string schedule_to_text(const Schedule& schedule);

/// Parses the v1 text format; nullopt on any syntax error (wrong magic,
/// truncated round, count mismatch).
std::optional<Schedule> schedule_from_text(const std::string& text);

/// File helpers; false on I/O or parse failure.
bool save_schedule(const Schedule& schedule, const std::string& path);
std::optional<Schedule> load_schedule(const std::string& path);

}  // namespace radio
