// Schedule (de)serialization: a precomputed Theorem-5 schedule is an
// operational artifact — a deployment plans it once, ships it to devices,
// and audits it later. The text format is line-oriented and diff-friendly:
//
//   radio-schedule v1
//   rounds <R>
//   round <index> <phase-label> <k> <id_1> ... <id_k>
//
// Phase labels must not contain whitespace (builder labels never do).
//
// Parsing is strict and allocation-safe: the `rounds` and per-round `<k>`
// headers are validated against the remaining input *before* any vector is
// sized, so a corrupt header claiming 4 billion rounds is a one-line
// diagnostic, not a multi-gigabyte allocation. Round indices must be exactly
// 0,1,2,…; with a node count supplied, every transmitter id must be < n.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "sim/schedule.hpp"

namespace radio {

/// Serializes to the v1 text format.
std::string schedule_to_text(const Schedule& schedule);

/// Parses the v1 text format; nullopt on any error (wrong magic, truncated
/// round, count mismatch, header larger than the input could hold). When
/// `error` is non-null it receives a one-line diagnostic naming what was
/// expected and the offending token. `max_nodes` > 0 additionally rejects
/// any transmitter id >= max_nodes (the schedule's target graph size).
std::optional<Schedule> schedule_from_text(const std::string& text,
                                           std::string* error = nullptr,
                                           NodeId max_nodes = 0);

/// File helpers; false / nullopt on I/O or parse failure. load_schedule's
/// diagnostic is prefixed with the path.
bool save_schedule(const Schedule& schedule, const std::string& path);
std::optional<Schedule> load_schedule(const std::string& path,
                                      std::string* error = nullptr,
                                      NodeId max_nodes = 0);

}  // namespace radio
