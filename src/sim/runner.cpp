#include "sim/runner.hpp"

#include "util/assert.hpp"

namespace radio {

BroadcastRun run_protocol(Protocol& protocol, const ProtocolContext& ctx,
                          BroadcastSession& session, Rng& rng,
                          std::uint32_t max_rounds) {
  RADIO_EXPECTS(max_rounds > 0);
  protocol.reset(ctx);
  const bool feedback = protocol.wants_observations();
  if (feedback) session.enable_observations();
  BroadcastRun run;
  std::vector<NodeId> transmitters;
  for (std::uint32_t round = 1; round <= max_rounds; ++round) {
    if (session.complete()) break;
    transmitters.clear();
    protocol.select_transmitters(round, session, rng, transmitters);
    const RoundStats& stats = session.step(transmitters);
    if (feedback) protocol.observe(round, session.last_observations());
    ++run.rounds;
    run.collisions += stats.collisions;
    run.transmissions += stats.transmitters;
  }
  run.completed = session.complete();
  run.informed = session.informed_count();
  return run;
}

BroadcastRun broadcast_with(Protocol& protocol, const ProtocolContext& ctx,
                            const Graph& g, NodeId source, Rng& rng,
                            std::uint32_t max_rounds) {
  BroadcastSession session(g, source);
  return run_protocol(protocol, ctx, session, rng, max_rounds);
}

}  // namespace radio
